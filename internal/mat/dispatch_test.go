package mat

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/compute"
)

// Tier-dispatch tests: every micro-kernel tier the host hardware supports
// is forced in turn and run through the same correctness and determinism
// suites, so CI exercises all reachable (tier, tile shape) pairs in one
// pass instead of relying on heterogeneous runners. Tests here mutate the
// package-level kernel configuration and must not use t.Parallel.

// forceTier points the dispatch globals at the given tier (with its
// derived blocking) for the duration of one test.
func forceTier(t *testing.T, tier kernelTier) {
	t.Helper()
	oldTier, old64, old32 := gemmTier, bp64, bp32
	gemmTier = tier
	bp64 = deriveParams(tier, 8, kernelCaches, gemmTuned, compute.Default().Workers())
	bp32 = deriveParams(tier, 4, kernelCaches, gemmTuned, compute.Default().Workers())
	t.Cleanup(func() { gemmTier, bp64, bp32 = oldTier, old64, old32 })
}

// hostTiers lists every tier the hardware can run, lowest first.
func hostTiers() []kernelTier {
	tiers := []kernelTier{tierGeneric}
	det := detectKernelTier()
	if det >= tierAVX2 {
		tiers = append(tiers, tierAVX2)
	}
	if det >= tierAVX512 {
		tiers = append(tiers, tierAVX512)
	}
	return tiers
}

// TestDispatchTierSweep checks every reachable tier against the naive
// reference, in both precisions, over shapes that hit interior tiles and
// both edge kinds (mr and nr remainders) at every tile geometry.
func TestDispatchTierSweep(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{64, 64, 64},  // all-interior for every geometry
		{7, 30, 13},   // rows < mr and cols < nr everywhere
		{9, 17, 17},   // single ragged row/col beyond one 8×16 tile
		{23, 40, 31},  // mr<8 and nr<16 remainders on the 512-bit tiles
		{65, 300, 33}, // crosses KC and one MC boundary with ragged edges
		{16, 256, 16}, // exact 8-row, 16-col multiples (no edges at 8×16)
		{12, 100, 24}, // edge rows on 8-row tiles, interior on 4-row ones
	}
	for _, tier := range hostTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			rng := rand.New(rand.NewSource(29))
			for _, c := range shapes {
				a := randDense(rng, c.m, c.k)
				b := randDense(rng, c.k, c.n)
				got := NewDense(c.m, c.n)
				gemmView(nil, denseView(got), denseView(a), false, denseView(b), false, gemmSet)
				want := refMul(denseView(a), false, denseView(b), false)
				assertClose(t, "f64", want, got, 1e-11)

				a32 := randDense32(rng, c.m, c.k)
				b32 := randDense32(rng, c.k, c.n)
				got32 := NewDense32(c.m, c.n)
				gemmView(nil, denseView(got32), denseView(a32), false, denseView(b32), false, gemmSet)
				want32 := refMul(denseView(toF64(a32)), false, denseView(toF64(b32)), false)
				for i := range got32.Data {
					if math.Abs(want32.Data[i]-float64(got32.Data[i])) > f32Tol*(1+want32.MaxAbs()) {
						t.Fatalf("f32 %dx%dx%d: element %d: %v vs %v",
							c.m, c.k, c.n, i, got32.Data[i], want32.Data[i])
					}
				}
			}
		})
	}
}

// TestDispatchParallelBitIdentical requires serial-vs-engine bit identity
// separately under every reachable tier: the fan-out band math depends on
// the tier's mr, so each geometry gets its own boundary coverage.
func TestDispatchParallelBitIdentical(t *testing.T) {
	for _, tier := range hostTiers() {
		t.Run(tier.String(), func(t *testing.T) {
			forceTier(t, tier)
			eng := compute.NewEngine(7)
			defer eng.Close()
			rng := rand.New(rand.NewSource(31))
			for _, c := range []struct{ m, k, n int }{
				{257, 180, 131},
				{96, 800, 64},  // shorter than one MC panel: sub-panel bands
				{17, 99999, 9}, // m barely ≥ 2·mr at the 8-row geometry
				{9, 99999, 9},  // m ≥ 2·mr only at the 4-row geometry
			} {
				a := randDense(rng, c.m, c.k)
				b := randDense(rng, c.k, c.n)
				serial := NewDense(c.m, c.n)
				gemmView(nil, denseView(serial), denseView(a), false, denseView(b), false, gemmSet)
				parallel := NewDense(c.m, c.n)
				gemmView(eng, denseView(parallel), denseView(a), false, denseView(b), false, gemmSet)
				for i := range serial.Data {
					if serial.Data[i] != parallel.Data[i] {
						t.Fatalf("%dx%dx%d: element %d differs bitwise", c.m, c.k, c.n, i)
					}
				}
			}
		})
	}
}

// TestDispatchAVX512MatchesAVX2Bitwise pins the strongest available
// correctness statement for the 512-bit kernels: at equal KC both asm
// tiers accumulate every output element over the identical p-order FMA
// chain, so their outputs must agree bit for bit — any lane-permutation
// or offset bug in the 8-wide kernels shows up as a last-bit diff here
// long before a tolerance test would notice.
func TestDispatchAVX512MatchesAVX2Bitwise(t *testing.T) {
	if detectKernelTier() < tierAVX512 {
		t.Skip("host lacks AVX-512")
	}
	pin := func(t *testing.T, tier kernelTier) {
		t.Helper()
		oldTier, old64, old32 := gemmTier, bp64, bp32
		gemmTier = tier
		// Pinned (untuned) blocking gives both tiers KC=256.
		bp64 = deriveParams(tier, 8, cacheInfo{}, false, 1)
		bp32 = deriveParams(tier, 4, cacheInfo{}, false, 1)
		t.Cleanup(func() { gemmTier, bp64, bp32 = oldTier, old64, old32 })
	}
	rng := rand.New(rand.NewSource(37))
	for _, c := range []struct{ m, k, n int }{
		{100, 300, 50},
		{37, 513, 29}, // ragged everything, crosses the KC boundary
		{8, 256, 16},
	} {
		a := randDense(rng, c.m, c.k)
		b := randDense(rng, c.k, c.n)
		a32 := randDense32(rng, c.m, c.k)
		b32 := randDense32(rng, c.k, c.n)

		run := func(t *testing.T, tier kernelTier) (*Dense, *Dense32) {
			pin(t, tier)
			out := NewDense(c.m, c.n)
			gemmView(nil, denseView(out), denseView(a), false, denseView(b), false, gemmSet)
			out32 := NewDense32(c.m, c.n)
			gemmView(nil, denseView(out32), denseView(a32), false, denseView(b32), false, gemmSet)
			return out, out32
		}
		wide, wide32 := run(t, tierAVX512)
		narrow, narrow32 := run(t, tierAVX2)
		for i := range wide.Data {
			if wide.Data[i] != narrow.Data[i] {
				t.Fatalf("f64 %dx%dx%d: element %d: avx512 %v vs avx2 %v",
					c.m, c.k, c.n, i, wide.Data[i], narrow.Data[i])
			}
		}
		for i := range wide32.Data {
			if wide32.Data[i] != narrow32.Data[i] {
				t.Fatalf("f32 %dx%dx%d: element %d: avx512 %v vs avx2 %v",
					c.m, c.k, c.n, i, wide32.Data[i], narrow32.Data[i])
			}
		}
	}
}

// TestWideKernelsAgree cross-checks the dispatched 8-wide kernels against
// their portable references on identical packed strips, including odd kc
// (the asm tail path) and all three store modes.
func TestWideKernelsAgree(t *testing.T) {
	if detectKernelTier() >= tierAVX512 {
		forceTier(t, tierAVX512)
	}
	rng := rand.New(rand.NewSource(41))
	for _, kc := range []int{1, 2, 7, 64, 255, 256} {
		ap := make([]float64, 8*kc)
		bp := make([]float64, 16*kc)
		for i := range ap {
			ap[i] = rng.NormFloat64()
		}
		for i := range bp {
			bp[i] = rng.NormFloat64()
		}
		for mode := gemmSet; mode <= gemmSub; mode++ {
			want := make([]float64, 128)
			got := make([]float64, 128)
			for i := range want {
				v := rng.NormFloat64()
				want[i] = v
				got[i] = v
			}
			gemmKernel8x16dGo(want, 16, ap, bp, kc, mode)
			gemmKernel8x16d(got, 16, ap, bp, kc, mode)
			for i := range want {
				if math.Abs(want[i]-got[i]) > 1e-11*(1+math.Abs(want[i])) {
					t.Fatalf("8x16d kc=%d mode=%d: element %d: %v vs %v", kc, mode, i, got[i], want[i])
				}
			}
		}

		ap32 := make([]float32, 8*kc)
		bp32s := make([]float32, 16*kc)
		for i := range ap32 {
			ap32[i] = float32(rng.NormFloat64())
		}
		for i := range bp32s {
			bp32s[i] = float32(rng.NormFloat64())
		}
		for mode := gemmSet; mode <= gemmSub; mode++ {
			want := make([]float32, 128)
			got := make([]float32, 128)
			for i := range want {
				v := float32(rng.NormFloat64())
				want[i] = v
				got[i] = v
			}
			gemmKernel8x16sGo(want, 16, ap32, bp32s, kc, mode)
			gemmKernel8x16s(got, 16, ap32, bp32s, kc, mode)
			for i := range want {
				if math.Abs(float64(want[i]-got[i])) > f32Tol*(1+math.Abs(float64(want[i]))) {
					t.Fatalf("8x16s kc=%d mode=%d: element %d: %v vs %v", kc, mode, i, got[i], want[i])
				}
			}
		}
	}
}

// TestInterleave4MatchesGo pins the asm pack interleave against the
// portable loop over ragged lengths and every tile-height stride the pack
// layer uses (plus an oversized one), in both precisions. On hosts
// without the asm path this degenerates to Go-vs-Go and still validates
// the wrapper's tail splicing.
func TestInterleave4MatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, dstStride := range []int{4, 8, 16, 5} {
		for _, n := range []int{1, 3, 4, 7, 8, 12, 100, 257} {
			srcStride := n + rng.Intn(5)
			src := make([]float64, 3*srcStride+n)
			for i := range src {
				src[i] = rng.NormFloat64()
			}
			want := make([]float64, (n-1)*dstStride+4)
			got := make([]float64, len(want))
			interleave4Go(want, dstStride, src, srcStride, n)
			interleave4(got, dstStride, src, srcStride, n)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("f64 stride=%d n=%d: element %d: %v vs %v", dstStride, n, i, got[i], want[i])
				}
			}

			src32 := make([]float32, 3*srcStride+n)
			for i := range src32 {
				src32[i] = float32(rng.NormFloat64())
			}
			want32 := make([]float32, (n-1)*dstStride+4)
			got32 := make([]float32, len(want32))
			interleave4Go(want32, dstStride, src32, srcStride, n)
			interleave4(got32, dstStride, src32, srcStride, n)
			for i := range want32 {
				if want32[i] != got32[i] {
					t.Fatalf("f32 stride=%d n=%d: element %d: %v vs %v", dstStride, n, i, got32[i], want32[i])
				}
			}
		}
	}
}

// TestResolveTier pins the IMRDMD_GEMM_KERNEL capping semantics: the env
// can lower the dispatch tier but never raise it above the hardware.
func TestResolveTier(t *testing.T) {
	cases := []struct {
		detected kernelTier
		env      string
		want     kernelTier
	}{
		{tierAVX512, "", tierAVX512},
		{tierAVX512, "auto", tierAVX512},
		{tierAVX512, "avx512", tierAVX512},
		{tierAVX512, "avx2", tierAVX2},
		{tierAVX512, "generic", tierGeneric},
		{tierAVX512, "off", tierGeneric},
		{tierAVX2, "avx512", tierAVX2}, // cannot raise above hardware
		{tierAVX2, "avx2", tierAVX2},
		{tierAVX2, "generic", tierGeneric},
		{tierGeneric, "avx2", tierGeneric},
		{tierGeneric, "avx512", tierGeneric},
		{tierAVX512, " AVX2 ", tierAVX2}, // trimmed, case-insensitive
		{tierAVX512, "bogus", tierAVX512},
	}
	for _, c := range cases {
		if got := resolveTier(c.detected, c.env); got != c.want {
			t.Errorf("resolveTier(%v, %q) = %v, want %v", c.detected, c.env, got, c.want)
		}
	}
}

// TestDeriveParams pins the blocking invariants: tile geometry follows the
// tier, untuned runs keep the historical constants, KC is only rederived
// on the AVX-512 tier (the numeric contract), and every derived value is
// a clamped multiple of its tile dimension.
func TestDeriveParams(t *testing.T) {
	caches := cacheInfo{l1d: 48 << 10, l2: 2 << 20, l3: 105 << 20}
	for _, tier := range []kernelTier{tierGeneric, tierAVX2, tierAVX512} {
		for _, esize := range []int{8, 4} {
			pinned := deriveParams(tier, esize, caches, false, 1)
			if pinned.kc != 256 || pinned.mc != 128 || pinned.nc != 512 {
				t.Errorf("%v/%d untuned: got %+v, want 256/128/512 blocking", tier, esize, pinned)
			}
			wantMR, wantNR := 4, 32/esize
			if tier == tierAVX512 {
				wantMR, wantNR = 8, 16
			}
			if pinned.mr != wantMR || pinned.nr != wantNR {
				t.Errorf("%v/%d: got tile %dx%d, want %dx%d", tier, esize, pinned.mr, pinned.nr, wantMR, wantNR)
			}

			tuned := deriveParams(tier, esize, caches, true, 1)
			if tier != tierAVX512 && tuned.kc != 256 {
				t.Errorf("%v/%d tuned: kc=%d, but KC is pinned at 256 below the AVX-512 tier", tier, esize, tuned.kc)
			}
			if tuned.kc%8 != 0 || tuned.kc < 128 || tuned.kc > 1024 {
				t.Errorf("%v/%d: kc=%d out of range", tier, esize, tuned.kc)
			}
			if tuned.mc%tuned.mr != 0 || tuned.mc < 4*tuned.mr || tuned.mc > 512 {
				t.Errorf("%v/%d: mc=%d not a clamped multiple of mr=%d", tier, esize, tuned.mc, tuned.mr)
			}
			if tuned.nc%tuned.nr != 0 || tuned.nc < 4*tuned.nr || tuned.nc > 1024 {
				t.Errorf("%v/%d: nc=%d not a clamped multiple of nr=%d", tier, esize, tuned.nc, tuned.nr)
			}
		}
	}
	// Unknown caches substitute conservative defaults rather than zeros.
	p := deriveParams(tierAVX512, 8, cacheInfo{}, true, 1)
	if p.kc < 128 || p.mc < 4*p.mr || p.nc < 4*p.nr {
		t.Errorf("zero caches: derived %+v below the clamp floors", p)
	}
}

// TestDeriveParamsNCPerWorker pins NC against the engine fan-out width:
// NC is sized from this worker's *share* of the L3, so widening the
// engine must shrink (never grow) NC, the un-parallel case must match
// the historical full-cache derivation, and KC/MC — per-core L1/L2
// quantities — must not move with the worker count at all.
func TestDeriveParamsNCPerWorker(t *testing.T) {
	caches := cacheInfo{l1d: 48 << 10, l2: 2 << 20, l3: 105 << 20}
	cases := []struct {
		esize, workers int
		wantNC         int
	}{
		// l3/workers/8/(kc*esize) rounded down to a multiple of nr=16,
		// clamped to [64, 1024]. KC derives from L1d/2/(16*esize):
		// 192 for f64, 384 for f32.
		{8, 1, 1024}, // 105MiB/8/1536 = 8960 → clamp ceiling
		{8, 4, 1024}, // 2240 → still above the ceiling
		{8, 16, 560},
		{8, 32, 272},
		{4, 1, 1024},
		{4, 16, 560},
		{4, 64, 128},
		{8, 0, 1024}, // degenerate worker counts behave as 1
		{8, -3, 1024},
	}
	for _, c := range cases {
		p := deriveParams(tierAVX512, c.esize, caches, true, c.workers)
		if p.nc != c.wantNC {
			t.Errorf("esize=%d workers=%d: nc=%d, want %d", c.esize, c.workers, p.nc, c.wantNC)
		}
		base := deriveParams(tierAVX512, c.esize, caches, true, 1)
		if p.kc != base.kc || p.mc != base.mc {
			t.Errorf("esize=%d workers=%d: kc/mc %d/%d moved with worker count (want %d/%d)",
				c.esize, c.workers, p.kc, p.mc, base.kc, base.mc)
		}
		if p.nc > base.nc {
			t.Errorf("esize=%d workers=%d: nc=%d exceeds single-worker nc=%d", c.esize, c.workers, p.nc, base.nc)
		}
	}
}

// TestKernelInfo checks the public snapshot against the live globals.
func TestKernelInfo(t *testing.T) {
	info := Kernel()
	if info.Tier != gemmTier.String() {
		t.Errorf("Tier = %q, want %q", info.Tier, gemmTier.String())
	}
	if info.Tuned != gemmTuned {
		t.Errorf("Tuned = %v, want %v", info.Tuned, gemmTuned)
	}
	if info.F64 != (KernelParams{bp64.mr, bp64.nr, bp64.kc, bp64.mc, bp64.nc}) {
		t.Errorf("F64 = %+v, want %+v", info.F64, bp64)
	}
	if info.F32 != (KernelParams{bp32.mr, bp32.nr, bp32.kc, bp32.mc, bp32.nc}) {
		t.Errorf("F32 = %+v, want %+v", info.F32, bp32)
	}
	if got := gemmParams[float64](); got != bp64 {
		t.Errorf("gemmParams[float64] = %+v, want %+v", got, bp64)
	}
	if got := gemmParams[float32](); got != bp32 {
		t.Errorf("gemmParams[float32] = %+v, want %+v", got, bp32)
	}
}
