// Package viz renders the paper's visual artifacts without a browser
// runtime: Turbo-colored rack layout views (Figs. 2, 4, 6), line plots of
// actual-vs-reconstructed series (Fig. 3), spectrum scatter plots
// (Figs. 5, 7), embedding panels (Fig. 8), and a standalone HTML report
// stitching them together — the Go equivalent of the paper's D3-in-
// Jupyter integration.
package viz

import (
	"fmt"
	"math"
)

// turboAnchors samples Google's Turbo colormap at 11 evenly spaced
// positions; Turbo interpolates linearly between them. The anchor values
// are the colormap's published RGB samples (dark blue → cyan → green →
// yellow → orange → dark red).
var turboAnchors = [][3]uint8{
	{48, 18, 59},   // 0.0  #30123b
	{68, 88, 203},  // 0.1  #4458cb
	{62, 155, 254}, // 0.2  #3e9bfe
	{24, 214, 203}, // 0.3  #18d6cb
	{70, 248, 132}, // 0.4  #46f884
	{162, 252, 60}, // 0.5  #a2fc3c
	{225, 221, 55}, // 0.6  #e1dd37
	{254, 161, 48}, // 0.7  #fea130
	{239, 90, 17},  // 0.8  #ef5a11
	{194, 36, 3},   // 0.9  #c22403
	{122, 4, 3},    // 1.0  #7a0403
}

// Turbo evaluates the Turbo colormap at t ∈ [0,1] (clamped), returning
// 8-bit RGB.
func Turbo(t float64) (r, g, b uint8) {
	if t < 0 || math.IsNaN(t) {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	pos := t * float64(len(turboAnchors)-1)
	i := int(pos)
	if i >= len(turboAnchors)-1 {
		a := turboAnchors[len(turboAnchors)-1]
		return a[0], a[1], a[2]
	}
	f := pos - float64(i)
	a, c := turboAnchors[i], turboAnchors[i+1]
	lerp := func(x, y uint8) uint8 {
		return uint8(float64(x) + f*(float64(y)-float64(x)) + 0.5)
	}
	return lerp(a[0], c[0]), lerp(a[1], c[1]), lerp(a[2], c[2])
}

// ZScoreColor maps a z-score in [-zmax, zmax] onto the Turbo scale the
// way the paper's figures do: blue hues for negative (cold / idle),
// green near zero (baseline), red hues for positive (hot).
func ZScoreColor(z, zmax float64) string {
	if zmax <= 0 {
		zmax = 5
	}
	t := (z + zmax) / (2 * zmax)
	r, g, b := Turbo(t)
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// ValueColor maps v linearly from [lo, hi] onto Turbo.
func ValueColor(v, lo, hi float64) string {
	if hi <= lo {
		hi = lo + 1
	}
	t := (v - lo) / (hi - lo)
	r, g, b := Turbo(t)
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// niceTicks returns ~n round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	if hi <= lo {
		hi = lo + 1
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for span/step > float64(n)*2 {
		step *= 2
	}
	for span/step < float64(n)/2 {
		step /= 2
	}
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+1e-12; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}
