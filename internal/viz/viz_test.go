package viz

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"imrdmd/internal/rack"
)

func TestTurboEndpointsAndRange(t *testing.T) {
	// Turbo starts blue-dominant and ends red-dominant.
	r0, g0, b0 := Turbo(0)
	if b0 <= r0 || b0 <= g0 {
		t.Fatalf("Turbo(0) = %d,%d,%d should be blue-dominant", r0, g0, b0)
	}
	r1, g1, b1 := Turbo(1)
	if r1 <= b1 || r1 <= g1 {
		t.Fatalf("Turbo(1) = %d,%d,%d should be red-dominant", r1, g1, b1)
	}
	// Mid range is bright green.
	rm, gm, bm := Turbo(0.5)
	if gm < 150 || gm <= rm || gm <= bm {
		t.Fatalf("Turbo(0.5) = %d,%d,%d should be green-dominant", rm, gm, bm)
	}
	// Quarter point is cyan-ish (blue and green high, red low).
	rq, gq, bq := Turbo(0.25)
	if rq > gq || rq > bq {
		t.Fatalf("Turbo(0.25) = %d,%d,%d should be cyan-ish", rq, gq, bq)
	}
}

func TestTurboClampsInput(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		r, g, b := Turbo(v)
		_ = r
		_ = g
		_ = b
		return true // must not panic; byte outputs are inherently in range
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	ra, ga, ba := Turbo(-5)
	rb, gb, bb := Turbo(0)
	if ra != rb || ga != gb || ba != bb {
		t.Fatal("Turbo(-5) should clamp to Turbo(0)")
	}
}

func TestZScoreColorDiverging(t *testing.T) {
	cold := ZScoreColor(-5, 5)
	hot := ZScoreColor(5, 5)
	mid := ZScoreColor(0, 5)
	if cold == hot || mid == cold || mid == hot {
		t.Fatalf("diverging colors collapsed: %s %s %s", cold, mid, hot)
	}
	if !strings.HasPrefix(cold, "#") || len(cold) != 7 {
		t.Fatalf("bad color format %q", cold)
	}
}

func TestSVGBasics(t *testing.T) {
	s := NewSVG(100, 50)
	s.Rect(1, 2, 3, 4, "#ff0000", "#000", 1, "hello <&> world")
	s.Circle(10, 10, 2, "#00ff00", "")
	s.Line(0, 0, 5, 5, "#0000ff", 1)
	s.Polyline([]float64{1, 2, 3}, []float64{4, 5, 6}, "#333", 1)
	s.Text(5, 5, 10, "middle", "", "label")
	out := s.String()
	for _, want := range []string{"<svg", "rect", "circle", "line", "polyline", "text", "hello &lt;&amp;&gt; world", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG output missing %q:\n%s", want, out)
		}
	}
}

func TestSVGPolylineDegenerate(t *testing.T) {
	s := NewSVG(10, 10)
	s.Polyline(nil, nil, "#000", 1)                  // empty: no-op
	s.Polyline([]float64{1}, []float64{}, "#000", 1) // mismatched: no-op
	if strings.Contains(s.String(), "polyline") {
		t.Fatal("degenerate polylines should be dropped")
	}
}

func TestRenderRackView(t *testing.T) {
	layout := rack.Polaris()
	values := make([]float64, layout.TotalNodes())
	for i := range values {
		values[i] = float64(i%11) - 5
	}
	values[3] = math.NaN()
	var buf bytes.Buffer
	err := RenderRackView(&buf, layout, values, RackViewConfig{
		Title:       "test view",
		ZMax:        5,
		Outlined:    map[int]bool{0: true},
		Highlighted: map[int]bool{1: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test view") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "z-score (Turbo diverging)") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "#d8d8d8") {
		t.Fatal("NaN node should render gray")
	}
	// One rect per node plus racks, legend and background.
	if c := strings.Count(out, "<rect"); c < layout.TotalNodes() {
		t.Fatalf("only %d rects for %d nodes", c, layout.TotalNodes())
	}
}

func TestRenderPlotLineAndPoints(t *testing.T) {
	var buf bytes.Buffer
	err := RenderPlot(&buf, PlotConfig{Title: "plot", XLabel: "x", YLabel: "y"},
		Series{Name: "line", X: []float64{0, 1, 2}, Y: []float64{1, 4, 9}},
		Series{Name: "dots", X: []float64{0, 1, 2}, Y: []float64{2, 3, 4}, Points: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"plot", "polyline", "circle", "line", "dots"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q", want)
		}
	}
}

func TestRenderPlotLogYSkipsNonPositive(t *testing.T) {
	var buf bytes.Buffer
	err := RenderPlot(&buf, PlotConfig{LogY: true},
		Series{Name: "s", X: []float64{0, 1, 2}, Y: []float64{0, 10, 100}, Points: true})
	if err != nil {
		t.Fatal(err)
	}
	// Only the two positive points survive.
	if c := strings.Count(buf.String(), "<circle"); c != 2 {
		t.Fatalf("log plot drew %d points, want 2", c)
	}
}

func TestRenderPlotEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderPlot(&buf, PlotConfig{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("empty plot should still be a valid document")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 10, 5)
	if len(ticks) < 3 || len(ticks) > 12 {
		t.Fatalf("tick count %d unreasonable: %v", len(ticks), ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatal("ticks not ascending")
		}
	}
	// Degenerate range must not hang or panic.
	if ticks := niceTicks(3, 3, 4); len(ticks) == 0 {
		t.Fatal("degenerate range gave no ticks")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{Title: "Case Study"}
	r.AddFigure("Rack", "the rack view", "<svg></svg>")
	r.AddTable("Timing", "", "a | b\n1 | 2")
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Case Study", "Rack", "<svg></svg>", "a | b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Prose is escaped; SVG is not.
	r2 := &Report{Title: "<script>"}
	var buf2 bytes.Buffer
	if err := r2.Render(&buf2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "<script>") {
		t.Fatal("title not escaped")
	}
}
