package viz

import (
	"fmt"
	"html/template"
	"io"
)

// ReportSection is one titled block of an HTML report: prose plus an
// optional inline SVG figure and an optional preformatted table.
type ReportSection struct {
	Title string
	Prose string
	SVG   template.HTML // inline SVG markup (trusted, produced by this package)
	Table string        // preformatted text table
}

// Report is a standalone HTML document — the repository's stand-in for
// the paper's Jupyter notebook interface: every figure and table in one
// shareable file.
type Report struct {
	Title    string
	Sections []ReportSection
}

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font-family: sans-serif; max-width: 1100px; margin: 24px auto; color: #222; }
h1 { font-size: 22px; } h2 { font-size: 17px; margin-top: 28px; }
pre { background: #f6f6f6; padding: 10px; overflow-x: auto; font-size: 12px; }
.fig { margin: 12px 0; border: 1px solid #ddd; padding: 6px; }
p { line-height: 1.45; }
</style></head><body>
<h1>{{.Title}}</h1>
{{range .Sections}}
<h2>{{.Title}}</h2>
{{if .Prose}}<p>{{.Prose}}</p>{{end}}
{{if .SVG}}<div class="fig">{{.SVG}}</div>{{end}}
{{if .Table}}<pre>{{.Table}}</pre>{{end}}
{{end}}
</body></html>
`))

// Render writes the report as HTML.
func (r *Report) Render(w io.Writer) error {
	if err := reportTmpl.Execute(w, r); err != nil {
		return fmt.Errorf("viz: report: %w", err)
	}
	return nil
}

// AddFigure appends a section with an SVG produced by this package.
func (r *Report) AddFigure(title, prose, svg string) {
	r.Sections = append(r.Sections, ReportSection{Title: title, Prose: prose, SVG: template.HTML(svg)})
}

// AddTable appends a section with a preformatted table.
func (r *Report) AddTable(title, prose, table string) {
	r.Sections = append(r.Sections, ReportSection{Title: title, Prose: prose, Table: table})
}
