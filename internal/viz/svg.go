package viz

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// SVG is a minimal SVG document builder sufficient for the rack views and
// plots. Elements are appended in paint order.
type SVG struct {
	W, H float64
	body strings.Builder
}

// NewSVG creates a canvas of the given pixel size.
func NewSVG(w, h float64) *SVG {
	return &SVG{W: w, H: h}
}

// esc escapes text content/attribute values.
func esc(s string) string {
	var b strings.Builder
	xml.EscapeText(&b, []byte(s))
	return b.String()
}

// Rect draws a rectangle. title, when nonempty, becomes the hover tooltip
// (the SVG analogue of the paper's D3 hover interaction).
func (s *SVG) Rect(x, y, w, h float64, fill, stroke string, strokeW float64, title string) {
	fmt.Fprintf(&s.body, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"`,
		x, y, w, h, fill)
	if stroke != "" {
		fmt.Fprintf(&s.body, ` stroke="%s" stroke-width="%.2f"`, stroke, strokeW)
	}
	if title == "" {
		s.body.WriteString("/>\n")
		return
	}
	fmt.Fprintf(&s.body, `><title>%s</title></rect>`+"\n", esc(title))
}

// Circle draws a circle.
func (s *SVG) Circle(cx, cy, r float64, fill string, title string) {
	fmt.Fprintf(&s.body, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"`, cx, cy, r, fill)
	if title == "" {
		s.body.WriteString("/>\n")
		return
	}
	fmt.Fprintf(&s.body, `><title>%s</title></circle>`+"\n", esc(title))
}

// Line draws a line segment.
func (s *SVG) Line(x1, y1, x2, y2 float64, stroke string, w float64) {
	fmt.Fprintf(&s.body, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, stroke, w)
}

// Polyline draws a connected path through the points.
func (s *SVG) Polyline(xs, ys []float64, stroke string, w float64) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return
	}
	var pts strings.Builder
	for i := range xs {
		fmt.Fprintf(&pts, "%.2f,%.2f ", xs[i], ys[i])
	}
	fmt.Fprintf(&s.body, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
		strings.TrimSpace(pts.String()), stroke, w)
}

// Text places a label. anchor is "start", "middle" or "end".
func (s *SVG) Text(x, y float64, size float64, anchor, fill, text string) {
	if anchor == "" {
		anchor = "start"
	}
	if fill == "" {
		fill = "#222"
	}
	fmt.Fprintf(&s.body, `<text x="%.2f" y="%.2f" font-size="%.1f" text-anchor="%s" fill="%s" font-family="sans-serif">%s</text>`+"\n",
		x, y, size, anchor, fill, esc(text))
}

// WriteTo emits the complete document.
func (s *SVG) WriteTo(w io.Writer) (int64, error) {
	n, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+
			"\n<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n%s</svg>\n",
		s.W, s.H, s.W, s.H, s.body.String())
	return int64(n), err
}

// String renders the document in memory.
func (s *SVG) String() string {
	var b strings.Builder
	if _, err := s.WriteTo(&b); err != nil {
		return ""
	}
	return b.String()
}
