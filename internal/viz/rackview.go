package viz

import (
	"fmt"
	"io"
	"math"

	"imrdmd/internal/rack"
)

// RackViewConfig drives RenderRackView.
type RackViewConfig struct {
	Title string
	// ZMax bounds the diverging color scale (the paper uses ±5).
	ZMax float64
	// Outlined nodes get a heavy dark outline (the hardware-error markers
	// of Figs. 4/6); Highlighted get a red outline (memory errors in
	// case study 1).
	Outlined    map[int]bool
	Highlighted map[int]bool
	// ActiveOnly, when non-nil, dims every node not in the set (the
	// "nodes utilized by a job" emphasis of Fig. 4).
	ActiveOnly map[int]bool
	// Scale multiplies the abstract layout units into pixels (default 1).
	Scale float64
}

// RenderRackView draws the machine with each node colored by its z-score
// (values[i] for node index i; NaN renders gray) and writes SVG to w.
func RenderRackView(w io.Writer, layout *rack.Layout, values []float64, cfg RackViewConfig) error {
	g := layout.Geometry()
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	zmax := cfg.ZMax
	if zmax <= 0 {
		zmax = 5
	}
	const legendH = 60
	const titleH = 28
	svg := NewSVG(g.Width*scale, g.Height*scale+legendH+titleH)
	if cfg.Title != "" {
		svg.Text(8, 18, 14, "start", "#111", cfg.Title)
	}
	offY := float64(titleH)

	// Rack outlines first.
	for _, rb := range g.Racks {
		svg.Rect(rb.Box.X*scale, rb.Box.Y*scale+offY, rb.Box.W*scale, rb.Box.H*scale,
			"none", "#999", 1, fmt.Sprintf("rack c%d-%d", rb.Rack, rb.Row))
	}
	refs := layout.Enumerate()
	for _, ref := range refs {
		i := ref.Index
		r := g.NodeRects[i]
		fill := "#d8d8d8"
		label := ref.ID()
		if i < len(values) && !math.IsNaN(values[i]) {
			fill = ZScoreColor(values[i], zmax)
			label = fmt.Sprintf("%s z=%.2f", ref.ID(), values[i])
		}
		if cfg.ActiveOnly != nil && !cfg.ActiveOnly[i] {
			fill = "#eeeeee"
		}
		stroke, sw := "", 0.0
		if cfg.Highlighted[i] {
			stroke, sw = "#cc0000", 1.6
		}
		if cfg.Outlined[i] {
			stroke, sw = "#111111", 1.6
		}
		svg.Rect(r.X*scale, r.Y*scale+offY, r.W*scale, r.H*scale, fill, stroke, sw, label)
	}

	// Diverging legend.
	ly := g.Height*scale + offY + 14
	lw := math.Min(320, g.Width*scale-20)
	steps := 64
	for i := 0; i < steps; i++ {
		t := float64(i) / float64(steps-1)
		z := -zmax + 2*zmax*t
		svg.Rect(10+t*(lw-10), ly, (lw-10)/float64(steps)+1, 12, ZScoreColor(z, zmax), "", 0, "")
	}
	svg.Text(10, ly+26, 10, "start", "#333", fmt.Sprintf("%.0f", -zmax))
	svg.Text(10+(lw-10)/2, ly+26, 10, "middle", "#333", "0")
	svg.Text(lw, ly+26, 10, "end", "#333", fmt.Sprintf("+%.0f", zmax))
	svg.Text(10+lw+12, ly+10, 10, "start", "#333", "z-score (Turbo diverging)")

	_, err := svg.WriteTo(w)
	return err
}
