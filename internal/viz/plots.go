package viz

import (
	"fmt"
	"io"
	"math"
)

// Series is one named line or point set for a plot.
type Series struct {
	Name  string
	X, Y  []float64
	Color string
	// Points draws markers instead of a connected line.
	Points bool
}

// PlotConfig describes a 2-D chart.
type PlotConfig struct {
	Title  string
	XLabel string
	YLabel string
	W, H   float64
	// LogY plots the y axis in log10 (used by the scaling comparison).
	LogY bool
}

var defaultPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// RenderPlot draws the series into an SVG chart with axes, ticks and a
// legend. It is the workhorse behind the Fig. 3/5/7/8/9 artifacts.
func RenderPlot(w io.Writer, cfg PlotConfig, series ...Series) error {
	if cfg.W <= 0 {
		cfg.W = 640
	}
	if cfg.H <= 0 {
		cfg.H = 400
	}
	const ml, mr, mt, mb = 62.0, 16.0, 36.0, 46.0
	pw := cfg.W - ml - mr
	ph := cfg.H - mt - mb

	// Data ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if cfg.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// 5% padding on y.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	px := func(x float64) float64 { return ml + (x-xmin)/(xmax-xmin)*pw }
	py := func(y float64) float64 {
		if cfg.LogY {
			y = math.Log10(math.Max(y, 1e-300))
		}
		return mt + ph - (y-ymin)/(ymax-ymin)*ph
	}

	svg := NewSVG(cfg.W, cfg.H)
	if cfg.Title != "" {
		svg.Text(cfg.W/2, 20, 13, "middle", "#111", cfg.Title)
	}
	// Axes.
	svg.Line(ml, mt, ml, mt+ph, "#444", 1)
	svg.Line(ml, mt+ph, ml+pw, mt+ph, "#444", 1)
	for _, tx := range niceTicks(xmin, xmax, 6) {
		x := px(tx)
		svg.Line(x, mt+ph, x, mt+ph+4, "#444", 1)
		svg.Text(x, mt+ph+16, 9, "middle", "#333", trimFloat(tx))
	}
	for _, ty := range niceTicks(ymin, ymax, 6) {
		y := mt + ph - (ty-ymin)/(ymax-ymin)*ph
		svg.Line(ml-4, y, ml, y, "#444", 1)
		label := trimFloat(ty)
		if cfg.LogY {
			label = fmt.Sprintf("1e%s", trimFloat(ty))
		}
		svg.Text(ml-7, y+3, 9, "end", "#333", label)
		svg.Line(ml, y, ml+pw, y, "#eee", 0.5)
	}
	if cfg.XLabel != "" {
		svg.Text(ml+pw/2, cfg.H-8, 11, "middle", "#111", cfg.XLabel)
	}
	if cfg.YLabel != "" {
		// Simple horizontal y label above the axis (no rotation support).
		svg.Text(8, mt-8, 11, "start", "#111", cfg.YLabel)
	}

	// Series.
	for si, s := range series {
		color := s.Color
		if color == "" {
			color = defaultPalette[si%len(defaultPalette)]
		}
		if s.Points {
			for i := range s.X {
				if cfg.LogY && s.Y[i] <= 0 {
					continue
				}
				svg.Circle(px(s.X[i]), py(s.Y[i]), 2.6, color,
					fmt.Sprintf("%s (%.4g, %.4g)", s.Name, s.X[i], s.Y[i]))
			}
		} else {
			xs := make([]float64, 0, len(s.X))
			ys := make([]float64, 0, len(s.X))
			for i := range s.X {
				if cfg.LogY && s.Y[i] <= 0 {
					continue
				}
				xs = append(xs, px(s.X[i]))
				ys = append(ys, py(s.Y[i]))
			}
			svg.Polyline(xs, ys, color, 1.4)
		}
		// Legend entry.
		lx := ml + 10
		ly := mt + 12 + float64(si)*14
		svg.Line(lx, ly-3, lx+16, ly-3, color, 2)
		svg.Text(lx+20, ly, 10, "start", "#333", s.Name)
	}
	_, err := svg.WriteTo(w)
	return err
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}
