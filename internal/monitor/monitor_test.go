package monitor

import (
	"math"
	"math/rand"
	"testing"

	"imrdmd/internal/core"
	"imrdmd/internal/mat"
)

// stepped builds a P×T matrix around 50°C where `hot` sensors jump by
// +delta at column `at`, and `cold` sensors drop by −delta at the same
// point.
func stepped(seed int64, p, t, at int, hot, cold []int, delta float64) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := mat.NewDense(p, t)
	isHot := map[int]bool{}
	isCold := map[int]bool{}
	for _, i := range hot {
		isHot[i] = true
	}
	for _, i := range cold {
		isCold[i] = true
	}
	for i := 0; i < p; i++ {
		// Bounded uniform base offsets keep quiet sensors' z-scores below
		// ±√3 deterministically (z-scores are scale-invariant, so any
		// Gaussian spread would legitimately exceed 2 somewhere).
		base := 50 + 2*(rng.Float64()-0.5)
		ph := rng.Float64() * 2 * math.Pi
		for k := 0; k < t; k++ {
			v := base + math.Sin(2*math.Pi*float64(k)/64+ph) + 0.3*rng.NormFloat64()
			if k >= at {
				if isHot[i] {
					v += delta
				}
				if isCold[i] {
					v -= delta
				}
			}
			m.Set(i, k, v)
		}
	}
	return m
}

func defaultCfg() Config {
	return Config{
		Opts:       core.Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true},
		BaselineLo: 45, BaselineHi: 55,
	}
}

func TestMonitorLifecycleErrors(t *testing.T) {
	m := New(defaultCfg())
	if _, err := m.Observe(mat.NewDense(4, 8)); err == nil {
		t.Fatal("Observe before Start must fail")
	}
	data := stepped(1, 16, 256, 9999, nil, nil, 0)
	if err := m.Start(data); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(data); err == nil {
		t.Fatal("second Start must fail")
	}
}

func TestMonitorBaselineTooNarrow(t *testing.T) {
	cfg := defaultCfg()
	cfg.BaselineLo, cfg.BaselineHi = 500, 600 // impossible band
	m := New(cfg)
	data := stepped(2, 8, 256, 9999, nil, nil, 0)
	if err := m.Start(data); err == nil {
		t.Fatal("empty baseline must fail Start")
	}
}

func TestMonitorDetectsHotAndCold(t *testing.T) {
	// 24 sensors; sensor 3 turns hot and sensor 7 turns cold at step 256.
	data := stepped(3, 24, 512, 256, []int{3}, []int{7}, 12)
	m := New(defaultCfg())
	if err := m.Start(data.ColSlice(0, 256)); err != nil {
		t.Fatal(err)
	}
	var hotSeen, coldSeen bool
	for pos := 256; pos < 512; pos += 64 {
		alerts, err := m.Observe(data.ColSlice(pos, pos+64))
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alerts {
			switch {
			case a.Sensor == 3 && a.Kind == Hot:
				hotSeen = true
			case a.Sensor == 7 && a.Kind == Cold:
				coldSeen = true
			case a.Sensor != 3 && a.Sensor != 7:
				t.Fatalf("false alert: %v", a)
			}
		}
	}
	if !hotSeen {
		t.Fatal("hot sensor 3 never alerted")
	}
	if !coldSeen {
		t.Fatal("cold sensor 7 never alerted")
	}
}

func TestMonitorDebounce(t *testing.T) {
	data := stepped(4, 16, 512, 256, []int{5}, nil, 12)
	cfg := defaultCfg()
	cfg.MinConsecutive = 3
	m := New(cfg)
	if err := m.Start(data.ColSlice(0, 256)); err != nil {
		t.Fatal(err)
	}
	fired := map[int]int{} // update index → alert count for sensor 5
	update := 0
	for pos := 256; pos < 512; pos += 64 {
		update++
		alerts, err := m.Observe(data.ColSlice(pos, pos+64))
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alerts {
			if a.Sensor == 5 {
				fired[update]++
				if a.Consecutive < cfg.MinConsecutive {
					t.Fatalf("alert fired before debounce: %v", a)
				}
			}
		}
	}
	if len(fired) == 0 {
		t.Fatal("debounced alert never fired")
	}
	// The first two breaching updates must not alert.
	if fired[1] != 0 || fired[2] != 0 {
		t.Fatalf("alerts fired during debounce window: %v", fired)
	}
}

func TestMonitorQuietStreamNoAlerts(t *testing.T) {
	data := stepped(5, 16, 512, 9999, nil, nil, 0)
	m := New(defaultCfg())
	if err := m.Start(data.ColSlice(0, 256)); err != nil {
		t.Fatal(err)
	}
	for pos := 256; pos < 512; pos += 128 {
		alerts, err := m.Observe(data.ColSlice(pos, pos+128))
		if err != nil {
			t.Fatal(err)
		}
		if len(alerts) != 0 {
			t.Fatalf("quiet stream produced alerts: %v", alerts)
		}
	}
}

func TestMonitorRecoveryResetsStreak(t *testing.T) {
	// Hot between steps 256–384, back to normal after.
	data := stepped(6, 16, 640, 256, []int{2}, nil, 12)
	// Undo the step after 384 by rebuilding columns 384+ as normal.
	normal := stepped(6, 16, 640, 9999, nil, nil, 0)
	for k := 384; k < 640; k++ {
		for i := 0; i < 16; i++ {
			data.Set(i, k, normal.At(i, k))
		}
	}
	cfg := defaultCfg()
	cfg.EvalWindow = 128 // recency horizon: judge only the newest data
	m := New(cfg)
	if err := m.Start(data.ColSlice(0, 256)); err != nil {
		t.Fatal(err)
	}
	alerts, err := m.Observe(data.ColSlice(256, 384))
	if err != nil {
		t.Fatal(err)
	}
	foundHot := false
	for _, a := range alerts {
		if a.Sensor == 2 && a.Kind == Hot {
			foundHot = true
		}
	}
	if !foundHot {
		t.Fatal("hot phase not detected")
	}
	// After enough normal data the windowed z-score must fall back and
	// alerts for sensor 2 must stop.
	var last []Alert
	for pos := 384; pos < 640; pos += 128 {
		last, err = m.Observe(data.ColSlice(pos, pos+128))
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range last {
		if a.Sensor == 2 && a.Kind == Hot {
			t.Fatalf("alert persists after recovery: %v", a)
		}
	}
	if m.Steps() != 640 {
		t.Fatalf("Steps = %d want 640", m.Steps())
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{Sensor: 3, Kind: Hot, Z: 2.5, Step: 100, Consecutive: 2}
	s := a.String()
	if s == "" || Hot.String() != "hot" || Cold.String() != "cold" {
		t.Fatal("alert formatting broken")
	}
}
