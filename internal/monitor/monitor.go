// Package monitor closes the loop the paper's pipeline feeds: a running
// I-mrDMD over a telemetry stream, with per-update baseline z-score
// evaluation and debounced alerting when sensors leave their band — the
// "prompt identification of anomalies in these large-scale systems" the
// online analysis exists for.
package monitor

import (
	"errors"
	"fmt"

	"imrdmd/internal/baseline"
	"imrdmd/internal/core"
	"imrdmd/internal/mat"
)

// Config parameterizes a Monitor.
type Config struct {
	// Opts configures the underlying I-mrDMD.
	Opts core.Options
	// BaselineLo/Hi select baseline sensors by time-mean over the initial
	// window (the paper's selection rule).
	BaselineLo, BaselineHi float64
	// HotZ and ColdZ are the alert thresholds (defaults +2 and −1.5, the
	// paper's interpretation bands).
	HotZ, ColdZ float64
	// MinConsecutive debounces alerts: a sensor must breach its threshold
	// on this many consecutive updates before an alert fires (default 1).
	MinConsecutive int
	// EvalWindow evaluates z-scores over only the most recent EvalWindow
	// columns, so recovered sensors fall back to baseline instead of
	// carrying their whole-history mean. Zero evaluates the full history.
	EvalWindow int
}

// AlertKind distinguishes overheating from idle/stalled signatures.
type AlertKind int

// Alert kinds.
const (
	// Hot: z above HotZ — overheating risk (paper: component failure).
	Hot AlertKind = iota
	// Cold: z below ColdZ — node idle or stalled (paper: wasted
	// allocation, suboptimal utilization).
	Cold
)

// String names the kind.
func (k AlertKind) String() string {
	if k == Hot {
		return "hot"
	}
	return "cold"
}

// Alert is one debounced threshold crossing.
type Alert struct {
	Sensor int
	Kind   AlertKind
	Z      float64
	// Step is the absorbed-column count when the alert fired.
	Step int
	// Consecutive is how many updates the breach has persisted.
	Consecutive int
}

// String formats the alert for logs.
func (a Alert) String() string {
	return fmt.Sprintf("step %d: sensor %d %s (z=%+.2f, %d consecutive)",
		a.Step, a.Sensor, a.Kind, a.Z, a.Consecutive)
}

// Monitor is the streaming assessment loop.
type Monitor struct {
	cfg     Config
	inc     *core.Incremental
	baseIdx []int
	hotRun  []int
	coldRun []int
	started bool
}

// New creates a Monitor.
func New(cfg Config) *Monitor {
	if cfg.HotZ == 0 {
		cfg.HotZ = 2
	}
	if cfg.ColdZ == 0 {
		cfg.ColdZ = -1.5
	}
	if cfg.MinConsecutive <= 0 {
		cfg.MinConsecutive = 1
	}
	return &Monitor{cfg: cfg, inc: core.NewIncremental(cfg.Opts)}
}

// Start fits the initial window and selects the baseline population.
func (m *Monitor) Start(first *mat.Dense) error {
	if m.started {
		return errors.New("monitor: Start called twice")
	}
	if err := m.inc.InitialFit(first); err != nil {
		return err
	}
	m.baseIdx = baseline.SelectByMeanRange(first, m.cfg.BaselineLo, m.cfg.BaselineHi)
	if len(m.baseIdx) < 2 {
		return fmt.Errorf("monitor: baseline band [%g, %g] selected %d sensors, need ≥2",
			m.cfg.BaselineLo, m.cfg.BaselineHi, len(m.baseIdx))
	}
	m.hotRun = make([]int, first.R)
	m.coldRun = make([]int, first.R)
	m.started = true
	return nil
}

// Observe absorbs a batch of new columns, re-evaluates z-scores, and
// returns the alerts that fired on this update.
func (m *Monitor) Observe(batch *mat.Dense) ([]Alert, error) {
	if !m.started {
		return nil, errors.New("monitor: Observe before Start")
	}
	if _, err := m.inc.PartialFit(batch); err != nil {
		return nil, err
	}
	z, err := m.ZScores()
	if err != nil {
		return nil, err
	}
	step := m.inc.Cols()
	var alerts []Alert
	for i, v := range z {
		if v > m.cfg.HotZ {
			m.hotRun[i]++
			m.coldRun[i] = 0
			if m.hotRun[i] >= m.cfg.MinConsecutive {
				alerts = append(alerts, Alert{Sensor: i, Kind: Hot, Z: v, Step: step, Consecutive: m.hotRun[i]})
			}
			continue
		}
		if v < m.cfg.ColdZ {
			m.coldRun[i]++
			m.hotRun[i] = 0
			if m.coldRun[i] >= m.cfg.MinConsecutive {
				alerts = append(alerts, Alert{Sensor: i, Kind: Cold, Z: v, Step: step, Consecutive: m.coldRun[i]})
			}
			continue
		}
		m.hotRun[i] = 0
		m.coldRun[i] = 0
	}
	return alerts, nil
}

// ZScores returns the current per-sensor z-scores over the full band,
// windowed to the configured recency horizon.
func (m *Monitor) ZScores() ([]float64, error) {
	tree := m.inc.Tree()
	var levels []float64
	if m.cfg.EvalWindow > 0 {
		hi := m.inc.Cols()
		levels = tree.ReadingLevelsRange(core.FullBand(), hi-m.cfg.EvalWindow, hi)
	} else {
		levels = tree.ReadingLevels(core.FullBand())
	}
	return baseline.ZScores(levels, m.baseIdx)
}

// BaselineSensors returns the baseline population chosen at Start.
func (m *Monitor) BaselineSensors() []int {
	return append([]int(nil), m.baseIdx...)
}

// Steps returns the absorbed column count.
func (m *Monitor) Steps() int { return m.inc.Cols() }

// Analyzer exposes the underlying I-mrDMD for reconstruction or spectrum
// queries.
func (m *Monitor) Analyzer() *core.Incremental { return m.inc }
