// Package codec is the versioned binary serialization layer behind
// snapshot/restore of incremental analyzer state: a Writer/Reader pair
// over a fixed little-endian wire format with a magic+version header and
// a CRC-32 trailer, plus typed primitives for the quantities the
// numeric layers persist (ints, floats, complexes, dense matrices).
//
// The format is deliberately dumb — field-sequential, no schema — because
// every producer/consumer pair lives in this repository and the version
// header gates compatibility: a Reader refuses a stream whose version it
// does not know, so format changes bump Version and (when needed) branch
// on it during decode. The trailer CRC turns truncation and bit rot into
// clean errors instead of silently corrupt analyzers. See DESIGN.md §8.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"imrdmd/internal/mat"
)

// Version is the current snapshot format version, written into every
// header. Bump it when the field layout of any encoded section changes.
//
// Version history:
//
//	1 — initial format (PR 4..8): all-f64 raw history, unbounded driftLog.
//	2 — flat-horizon streaming (PR 9): tiered raw history (f32 cold
//	    chunks + f64 hot tail), windowed-pipeline options, bounded
//	    driftLog. Readers still decode version-1 streams.
const Version = 2

// magic identifies an imrdmd snapshot stream.
const magic = "IMRDSNAP"

// maxLen bounds every decoded length/dimension (element count sanity
// check); chunkLen bounds the capacity any single decode allocates ahead
// of the data actually read, so a corrupt or hostile stream claiming a
// huge length cannot drive a multi-gigabyte allocation from a tiny input
// — slices grow with consumed bytes and a lying length dies at
// io.ErrUnexpectedEOF after at most one chunk.
const (
	maxLen   = 1 << 30
	chunkLen = 1 << 16
)

// Sentinel errors, matchable with errors.Is through the wrapped errors
// the Reader returns.
var (
	// ErrMagic reports a stream that is not an imrdmd snapshot at all.
	ErrMagic = errors.New("codec: not an imrdmd snapshot")
	// ErrVersion reports a snapshot written by an unknown format version.
	ErrVersion = errors.New("codec: unsupported snapshot version")
	// ErrChecksum reports a trailer CRC mismatch (truncation or corruption).
	ErrChecksum = errors.New("codec: snapshot checksum mismatch")
	// ErrCorrupt reports a structurally invalid field (negative or
	// implausibly large length, malformed shape).
	ErrCorrupt = errors.New("codec: corrupt snapshot field")
)

// Writer serializes primitives to an underlying io.Writer. Errors latch:
// after the first write error every call is a no-op and Close returns it.
// Callers therefore write whole sections unchecked and test once.
type Writer struct {
	w   io.Writer
	crc hash.Hash32
	buf [8]byte
	err error
}

// NewWriter starts a snapshot stream on w at the current Version, writing
// the magic/version header immediately.
func NewWriter(w io.Writer) *Writer {
	return NewWriterVersion(w, Version)
}

// NewWriterVersion starts a snapshot stream at an explicit format version
// — the hook compatibility tests use to produce historical streams. It
// only stamps the header; the caller must emit the field layout that
// version defines.
func NewWriterVersion(w io.Writer, version uint32) *Writer {
	e := &Writer{w: w, crc: crc32.NewIEEE()}
	e.raw([]byte(magic))
	e.U32(version)
	return e
}

// Err returns the first error encountered, if any.
func (e *Writer) Err() error { return e.err }

// Close writes the CRC-32 trailer over everything emitted so far and
// returns the latched error state. It does not close the underlying
// writer.
func (e *Writer) Close() error {
	if e.err != nil {
		return e.err
	}
	sum := e.crc.Sum32()
	binary.LittleEndian.PutUint32(e.buf[:4], sum)
	if _, err := e.w.Write(e.buf[:4]); err != nil {
		e.err = err
	}
	return e.err
}

// raw writes b to the stream and folds it into the running CRC.
func (e *Writer) raw(b []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(b); err != nil {
		e.err = err
		return
	}
	e.crc.Write(b)
}

// U32 writes a fixed 32-bit unsigned value.
func (e *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.raw(e.buf[:4])
}

// Int writes an int as a signed 64-bit value.
func (e *Writer) Int(v int) { e.I64(int64(v)) }

// I64 writes a signed 64-bit value.
func (e *Writer) I64(v int64) {
	binary.LittleEndian.PutUint64(e.buf[:8], uint64(v))
	e.raw(e.buf[:8])
}

// Bool writes a boolean as one byte.
func (e *Writer) Bool(v bool) {
	e.buf[0] = 0
	if v {
		e.buf[0] = 1
	}
	e.raw(e.buf[:1])
}

// Float writes a float64 by bit pattern (NaN payloads and signed zeros
// survive the round trip exactly).
func (e *Writer) Float(v float64) {
	binary.LittleEndian.PutUint64(e.buf[:8], math.Float64bits(v))
	e.raw(e.buf[:8])
}

// Complex writes a complex128 as its real and imaginary parts.
func (e *Writer) Complex(v complex128) {
	e.Float(real(v))
	e.Float(imag(v))
}

// String writes a length-prefixed UTF-8 string.
func (e *Writer) String(s string) {
	e.Int(len(s))
	e.raw([]byte(s))
}

// Ints writes a length-prefixed []int.
func (e *Writer) Ints(v []int) {
	e.Int(len(v))
	for _, x := range v {
		e.Int(x)
	}
}

// Floats writes a length-prefixed []float64.
func (e *Writer) Floats(v []float64) {
	e.Int(len(v))
	for _, x := range v {
		e.Float(x)
	}
}

// Complexes writes a length-prefixed []complex128.
func (e *Writer) Complexes(v []complex128) {
	e.Int(len(v))
	for _, x := range v {
		e.Complex(x)
	}
}

// Dense writes a matrix as its shape followed by the row-major payload.
// Strided matrices (views, capacity-padded growers) serialize tightly:
// only the R×C elements hit the wire, so the decoded matrix is packed
// regardless of the writer's in-memory layout.
func (e *Writer) Dense(m *mat.Dense) {
	e.Int(m.R)
	e.Int(m.C)
	for i := 0; i < m.R; i++ {
		for _, x := range m.Row(i) {
			e.Float(x)
		}
	}
}

// Dense32 writes a float32 matrix as its shape followed by the row-major
// payload of 32-bit patterns — the cold-tier history sections of format
// version ≥ 2. Like Dense, strided inputs serialize tightly.
func (e *Writer) Dense32(m *mat.Dense32) {
	e.Int(m.R)
	e.Int(m.C)
	for i := 0; i < m.R; i++ {
		for _, x := range m.Row(i) {
			e.U32(math.Float32bits(x))
		}
	}
}

// Reader deserializes a stream written by Writer. Like the Writer, errors
// latch: after the first failure every getter returns a zero value, so
// callers decode whole sections and check Err (or Close) once. A short
// read surfaces as io.ErrUnexpectedEOF — the truncated-snapshot error.
type Reader struct {
	r       io.Reader
	crc     hash.Hash32
	buf     [8]byte
	version uint32
	err     error
}

// NewReader opens a snapshot stream, validating the magic and version
// header before returning. Every version from 1 through Version is
// accepted; decoders branch on Version() for layouts that changed.
func NewReader(r io.Reader) (*Reader, error) {
	d := &Reader{r: r, crc: crc32.NewIEEE()}
	var hdr [len(magic)]byte
	d.raw(hdr[:])
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMagic, d.err)
	}
	if string(hdr[:]) != magic {
		return nil, ErrMagic
	}
	v := d.U32()
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrVersion, d.err)
	}
	if v < 1 || v > Version {
		return nil, fmt.Errorf("%w: got %d, can read 1..%d", ErrVersion, v, Version)
	}
	d.version = v
	return d, nil
}

// Version reports the format version stamped in the stream header; decode
// paths branch on it for sections whose layout changed across versions.
func (d *Reader) Version() uint32 { return d.version }

// Err returns the first error encountered, if any.
func (d *Reader) Err() error { return d.err }

// fail latches err (once) and returns the zero-value-producing state.
func (d *Reader) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Close reads and verifies the CRC-32 trailer, returning the latched
// error state. Call it after the last field of the last section.
func (d *Reader) Close() error {
	if d.err != nil {
		return d.err
	}
	want := d.crc.Sum32() // snapshot before the trailer bytes perturb it
	if _, err := io.ReadFull(d.r, d.buf[:4]); err != nil {
		d.fail(fmt.Errorf("%w: %v", ErrChecksum, noEOF(err)))
		return d.err
	}
	if got := binary.LittleEndian.Uint32(d.buf[:4]); got != want {
		d.fail(fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, got, want))
	}
	return d.err
}

// raw fills b from the stream and folds it into the running CRC.
func (d *Reader) raw(b []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.fail(noEOF(err))
		return
	}
	d.crc.Write(b)
}

// noEOF normalizes a mid-field io.EOF to io.ErrUnexpectedEOF: any EOF
// while a field is owed means the snapshot was truncated.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// U32 reads a fixed 32-bit unsigned value.
func (d *Reader) U32() uint32 {
	d.raw(d.buf[:4])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

// I64 reads a signed 64-bit value.
func (d *Reader) I64() int64 {
	d.raw(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(d.buf[:8]))
}

// Int reads an int, rejecting values outside the sane length range.
func (d *Reader) Int() int {
	v := d.I64()
	if d.err == nil && (v < math.MinInt32 || v > maxLen) {
		d.fail(fmt.Errorf("%w: int %d out of range", ErrCorrupt, v))
		return 0
	}
	return int(v)
}

// Len reads a non-negative length/dimension.
func (d *Reader) Len() int {
	v := d.Int()
	if d.err == nil && v < 0 {
		d.fail(fmt.Errorf("%w: negative length %d", ErrCorrupt, v))
		return 0
	}
	return v
}

// Bool reads a boolean.
func (d *Reader) Bool() bool {
	d.raw(d.buf[:1])
	return d.err == nil && d.buf[0] != 0
}

// Float reads a float64.
func (d *Reader) Float() float64 {
	d.raw(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(d.buf[:8]))
}

// Complex reads a complex128.
func (d *Reader) Complex() complex128 {
	re := d.Float()
	im := d.Float()
	return complex(re, im)
}

// String reads a length-prefixed string.
func (d *Reader) String() string {
	n := d.Len()
	if d.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, 0, minInt(n, chunkLen))
	var buf [chunkLen]byte
	for len(b) < n && d.err == nil {
		k := minInt(n-len(b), chunkLen)
		d.raw(buf[:k])
		b = append(b, buf[:k]...)
	}
	if d.err != nil {
		return ""
	}
	return string(b)
}

// decodeSlice reads n elements via get, growing the result with the
// consumed input (capacity starts at one chunk, not at the claimed n).
func decodeSlice[T any](d *Reader, n int, get func() T) []T {
	v := make([]T, 0, minInt(n, chunkLen))
	for len(v) < n && d.err == nil {
		v = append(v, get())
	}
	if d.err != nil {
		return nil
	}
	return v
}

// Ints reads a length-prefixed []int.
func (d *Reader) Ints() []int {
	n := d.Len()
	if d.err != nil {
		return nil
	}
	return decodeSlice(d, n, d.Int)
}

// Floats reads a length-prefixed []float64.
func (d *Reader) Floats() []float64 {
	n := d.Len()
	if d.err != nil {
		return nil
	}
	return decodeSlice(d, n, d.Float)
}

// Complexes reads a length-prefixed []complex128.
func (d *Reader) Complexes() []complex128 {
	n := d.Len()
	if d.err != nil {
		return nil
	}
	return decodeSlice(d, n, d.Complex)
}

// Dense reads a matrix written by Writer.Dense.
func (d *Reader) Dense() *mat.Dense {
	r := d.Len()
	c := d.Len()
	if d.err != nil {
		return nil
	}
	if r > 0 && c > maxLen/r {
		d.fail(fmt.Errorf("%w: matrix shape %d×%d too large", ErrCorrupt, r, c))
		return nil
	}
	data := decodeSlice(d, r*c, d.Float)
	if d.err != nil {
		return nil
	}
	return &mat.Dense{R: r, C: c, Data: data}
}

// Dense32 reads a float32 matrix written by Writer.Dense32.
func (d *Reader) Dense32() *mat.Dense32 {
	r := d.Len()
	c := d.Len()
	if d.err != nil {
		return nil
	}
	if r > 0 && c > maxLen/r {
		d.fail(fmt.Errorf("%w: matrix shape %d×%d too large", ErrCorrupt, r, c))
		return nil
	}
	data := decodeSlice(d, r*c, func() float32 {
		return math.Float32frombits(d.U32())
	})
	if d.err != nil {
		return nil
	}
	return &mat.Dense32{R: r, C: c, Data: data}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
