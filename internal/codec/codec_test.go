package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"imrdmd/internal/mat"
)

// encodeSample writes one of every primitive and returns the stream.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int(-42)
	w.I64(1 << 40)
	w.Bool(true)
	w.Bool(false)
	w.Float(math.Pi)
	w.Float(math.Copysign(0, -1))
	w.Complex(complex(1.5, -2.5))
	w.String("mixed")
	w.Ints([]int{0, 3, 7})
	w.Floats([]float64{1, 2.5, -3e-9})
	w.Complexes([]complex128{1i, 2 - 3i})
	m := mat.NewDense(3, 2)
	for i := range m.Data {
		m.Data[i] = float64(i) * 0.5
	}
	w.Dense(m)
	w.Dense(mat.NewDense(4, 0)) // degenerate shapes must round-trip too
	m32 := mat.NewDense32(2, 3)
	for i := range m32.Data {
		m32.Data[i] = float32(i) * 0.25
	}
	w.Dense32(m32)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	r, err := NewReader(bytes.NewReader(encodeSample(t)))
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Int(); v != -42 {
		t.Fatalf("Int = %d", v)
	}
	if v := r.I64(); v != 1<<40 {
		t.Fatalf("I64 = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip broken")
	}
	if v := r.Float(); v != math.Pi {
		t.Fatalf("Float = %v", v)
	}
	if v := r.Float(); math.Signbit(v) == false || v != 0 {
		t.Fatalf("signed zero lost: %v", v)
	}
	if v := r.Complex(); v != complex(1.5, -2.5) {
		t.Fatalf("Complex = %v", v)
	}
	if v := r.String(); v != "mixed" {
		t.Fatalf("String = %q", v)
	}
	ints := r.Ints()
	if len(ints) != 3 || ints[1] != 3 {
		t.Fatalf("Ints = %v", ints)
	}
	fs := r.Floats()
	if len(fs) != 3 || fs[2] != -3e-9 {
		t.Fatalf("Floats = %v", fs)
	}
	cs := r.Complexes()
	if len(cs) != 2 || cs[1] != 2-3i {
		t.Fatalf("Complexes = %v", cs)
	}
	m := r.Dense()
	if m.R != 3 || m.C != 2 || m.At(2, 1) != 2.5 {
		t.Fatalf("Dense shape/content wrong: %+v", m)
	}
	deg := r.Dense()
	if deg.R != 4 || deg.C != 0 || deg.Data == nil || len(deg.Data) != 0 {
		t.Fatalf("degenerate Dense wrong: %+v", deg)
	}
	m32 := r.Dense32()
	if m32.R != 2 || m32.C != 3 || m32.At(1, 2) != 1.25 {
		t.Fatalf("Dense32 shape/content wrong: %+v", m32)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTASNAPxxxx"))); !errors.Is(err, ErrMagic) {
		t.Fatalf("want ErrMagic, got %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, ErrMagic) {
		t.Fatalf("empty stream: want ErrMagic, got %v", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	for _, bad := range []uint32{0, Version + 7} {
		var buf bytes.Buffer
		buf.WriteString(magic)
		var v [4]byte
		binary.LittleEndian.PutUint32(v[:], bad)
		buf.Write(v[:])
		if _, err := NewReader(&buf); !errors.Is(err, ErrVersion) {
			t.Fatalf("version %d: want ErrVersion, got %v", bad, err)
		}
	}
}

// TestOlderVersionAccepted: every historical version opens, and the
// stream's stamped version is surfaced for decode-time branching.
func TestOlderVersionAccepted(t *testing.T) {
	for v := uint32(1); v <= Version; v++ {
		var buf bytes.Buffer
		w := NewWriterVersion(&buf, v)
		w.Int(99)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("version %d rejected: %v", v, err)
		}
		if r.Version() != v {
			t.Fatalf("Version() = %d, want %d", r.Version(), v)
		}
		if got := r.Int(); got != 99 {
			t.Fatalf("payload at version %d = %d", v, got)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTruncated(t *testing.T) {
	full := encodeSample(t)
	// Every proper prefix must fail cleanly — either a field read hits
	// ErrUnexpectedEOF or the trailer check fails; never a silent success.
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 3} {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // header itself truncated: already an error
		}
		drain(r)
		if err := r.Close(); err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(full))
		} else if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
}

func TestCorruption(t *testing.T) {
	full := encodeSample(t)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 32; trial++ {
		b := append([]byte(nil), full...)
		i := len(magic) + 4 + rng.Intn(len(b)-len(magic)-4) // spare the header
		b[i] ^= 0x40
		r, err := NewReader(bytes.NewReader(b))
		if err != nil {
			continue
		}
		drain(r)
		if err := r.Close(); err == nil {
			t.Fatalf("bit flip at %d not detected", i)
		}
	}
}

// drain reads the sample stream's fields, ignoring values (errors latch).
func drain(r *Reader) {
	r.Int()
	r.I64()
	r.Bool()
	r.Bool()
	r.Float()
	r.Float()
	r.Complex()
	_ = r.String()
	r.Ints()
	r.Floats()
	r.Complexes()
	r.Dense()
	r.Dense()
	r.Dense32()
}

func TestWriterErrLatches(t *testing.T) {
	w := NewWriter(failWriter{})
	w.Int(1)
	w.Floats([]float64{1, 2})
	if err := w.Close(); err == nil {
		t.Fatal("write error not surfaced")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

// TestLyingLengthDoesNotOverallocate: a tiny stream claiming a huge
// slice length must fail at the input's end, not allocate gigabytes up
// front (the restore endpoint feeds attacker-supplied bytes here).
func TestLyingLengthDoesNotOverallocate(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Int(1 << 29) // claims a 4 GiB float64 slice...
	w.Float(1)     // ...but carries one element
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if v := r.Floats(); v != nil {
		t.Fatal("truncated huge slice decoded")
	}
	runtime.ReadMemStats(&after)
	if grown := after.TotalAlloc - before.TotalAlloc; grown > 64<<20 {
		t.Fatalf("decode of lying length allocated %d MiB", grown>>20)
	}
	if !errors.Is(r.Err(), io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", r.Err())
	}
}
