package shard

import (
	"fmt"

	"imrdmd/internal/codec"
	"imrdmd/internal/compute"
)

// Encode serializes the sharded decomposition: the shard offsets, the
// contiguous left factor the shard rows view into, the replicated Σ/V,
// every update knob and counter (the update counter phases the
// re-orthogonalization schedule), and the transport accounting, so a
// decoded Coordinator continues the stream bit-compatibly and its
// metrics endpoint keeps counting from where the snapshot left off.
func (c *Coordinator) Encode(w *codec.Writer) {
	w.Ints(c.offs)
	w.Dense(c.bigU)
	w.Floats(c.s)
	w.Dense(c.v)
	w.Int(c.maxRank)
	w.Float(c.dropTol)
	w.Int(c.reorthEvery)
	w.Bool(c.payload32)
	w.Int(c.updates)
	st := c.Stats()
	w.Int(st.Updates)
	w.Int(st.Reduces)
	w.Int(st.ReorthReduces)
	w.Int(st.RowBroadcasts)
	w.Int(st.LastPayloadElems)
	w.Int(st.LastPayloadBytes)
	w.I64(st.TotalBytes)
}

// DecodeCoordinator reconstructs a Coordinator written by Encode,
// attaching the runtime pieces a snapshot cannot carry: the engine, the
// workspace (nil creates a private one) and the reducer transport (nil
// uses the in-process SumReducer). The shard partition, precision tier
// and every factor come from the stream; shapes are cross-checked so a
// corrupt snapshot fails here rather than mid-update.
func DecodeCoordinator(r *codec.Reader, eng *compute.Engine, ws *compute.Workspace, red Reducer) (*Coordinator, error) {
	if ws == nil {
		ws = compute.NewWorkspace()
	}
	if red == nil {
		red = &SumReducer{}
	}
	offs := r.Ints()
	bigU := r.Dense()
	s := r.Floats()
	v := r.Dense()
	maxRank := r.Int()
	dropTol := r.Float()
	reorthEvery := r.Int()
	payload32 := r.Bool()
	updates := r.Int()
	var st Stats
	st.Updates = r.Int()
	st.Reduces = r.Int()
	st.ReorthReduces = r.Int()
	st.RowBroadcasts = r.Int()
	st.LastPayloadElems = r.Int()
	st.LastPayloadBytes = r.Int()
	st.TotalBytes = r.I64()
	st.Payload32 = payload32
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(offs) < 2 || bigU == nil || v == nil {
		return nil, fmt.Errorf("shard: decoded coordinator structurally incomplete (%d offsets)", len(offs))
	}
	if offs[0] != 0 || offs[len(offs)-1] != bigU.R {
		return nil, fmt.Errorf("shard: decoded offsets [%d..%d] do not span the %d factor rows",
			offs[0], offs[len(offs)-1], bigU.R)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return nil, fmt.Errorf("shard: decoded offsets not monotone at %d", i)
		}
	}
	if bigU.C != len(s) || v.C != len(s) {
		return nil, fmt.Errorf("shard: decoded factor shapes inconsistent (U %d×%d, %d singular values, V %d×%d)",
			bigU.R, bigU.C, len(s), v.R, v.C)
	}
	return &Coordinator{
		maxRank:     maxRank,
		dropTol:     dropTol,
		reorthEvery: reorthEvery,
		payload32:   payload32,
		eng:         eng,
		ws:          ws,
		red:         red,
		offs:        offs,
		bigU:        bigU,
		s:           s,
		v:           v,
		updates:     updates,
		stats:       st,
	}, nil
}
