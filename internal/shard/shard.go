// Package shard partitions the running I-mrDMD decomposition across S
// row-shards: each shard owns a contiguous slice of the sensor rows (its
// slice of the left factor U and of every incoming column block) while the
// small factors Σ and V replicate, following the row-separability of the
// Brand update and the mrDMD recursion the paper observes. One update
// needs exactly one collective — the q×w projection (with its w×w Gram
// rider) summed across shards — which is the entire coordination payload
// a multi-node deployment would put on the wire.
//
// The math of the shard-local and replicated phases lives in internal/svd
// (sharded.go); this package owns the orchestration: the Reducer transport
// seam and the Coordinator that fans blocks out to the shards on the
// shared compute engine. The first Reducer is an in-process sum; swapping
// in a wire transport (MPI-style allreduce, gRPC ring) is the multi-node
// follow-up and touches nothing outside this package. See DESIGN.md §7.
package shard

import "sync"

// Reducer is the transport seam of the sharded decomposition: the single
// collective each update performs. AllReduce element-wise sums the shard
// payloads — parts[i] is shard i's contribution — and leaves the sum in
// every shard's buffer, exactly the semantics of a wire all-reduce. All
// payloads have equal length.
type Reducer interface {
	AllReduce(parts [][]float64)
	// AllReduce32 is the float32 collective of the mixed precision tier:
	// the same payload shape at half the bytes (see Options.Precision).
	AllReduce32(parts [][]float32)
}

// SumReducer is the in-process Reducer: a plain element-wise sum fanned
// back to every shard. It is the reference implementation a wire
// transport must be observationally equivalent to (up to floating-point
// summation order, which a deterministic ring or tree fixes).
type SumReducer struct {
	mu    sync.Mutex
	calls int
}

// sumToAll is the reference collective in either payload tier: accumulate
// every shard's contribution into the first buffer, then fan the sum back.
func sumToAll[T float32 | float64](parts [][]T) {
	acc := parts[0]
	for _, p := range parts[1:] {
		for i, v := range p {
			acc[i] += v
		}
	}
	for _, p := range parts[1:] {
		copy(p, acc)
	}
}

// AllReduce sums parts into every buffer.
func (r *SumReducer) AllReduce(parts [][]float64) {
	if len(parts) == 0 {
		return
	}
	sumToAll(parts)
	r.mu.Lock()
	r.calls++
	r.mu.Unlock()
}

// AllReduce32 sums float32 parts into every buffer.
func (r *SumReducer) AllReduce32(parts [][]float32) {
	if len(parts) == 0 {
		return
	}
	sumToAll(parts)
	r.mu.Lock()
	r.calls++
	r.mu.Unlock()
}

// Calls returns how many collectives the reducer has performed.
func (r *SumReducer) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// Stats records what the sharded decomposition has put through its
// transport seam — the quantities the multi-node scale story is priced
// in. The per-update payload test pins Reduces == Updates and
// LastPayloadElems == (q+w)·w.
type Stats struct {
	// Updates counts absorbed column-block updates.
	Updates int
	// Reduces counts projection collectives — exactly one per update.
	Reduces int
	// ReorthReduces counts the periodic q×q re-orthogonalization
	// collectives (one every reorthEvery updates, amortized).
	ReorthReduces int
	// RowBroadcasts counts structural row-update (new sensor) events.
	RowBroadcasts int
	// LastPayloadElems is the element count of the most recent projection
	// payload ((q+w)·w) and LastPayloadBytes its transport size — 4 bytes
	// per element under the float32 tier, 8 otherwise.
	LastPayloadElems int
	LastPayloadBytes int
	// TotalBytes accumulates every collective's and broadcast's payload
	// bytes over the coordinator's lifetime.
	TotalBytes int64
	// Payload32 reports whether projection payloads ship as float32.
	Payload32 bool
}
