package shard

import (
	"fmt"
	"sync"

	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
	"imrdmd/internal/svd"
)

// Config sizes a Coordinator.
type Config struct {
	// Shards is the row-partition count (≥ 1). The seed matrix must have
	// at least Shards rows.
	Shards int
	// MaxRank caps the retained rank after every update; 0 is unbounded.
	MaxRank int
	// Payload32 ships projection payloads as float32 — the mixed tier's
	// half-width collective. The shard-local arithmetic and the replicated
	// refactor stay float64 (the payload is the scarce resource; see
	// DESIGN.md §7).
	Payload32 bool
	// Reducer is the transport; nil uses the in-process SumReducer.
	Reducer Reducer
	// Engine runs the shard fan-out and every shard's kernels; nil runs
	// serially.
	Engine *compute.Engine
	// Workspace pools the scratch of all phases; nil creates a private one.
	Workspace *compute.Workspace
}

// Coordinator maintains a row-sharded incremental SVD: shard s owns rows
// [offs[s], offs[s+1]) of the left factor (views into one contiguous
// buffer, so in-process the gather an exporting caller needs is free),
// while Σ and V are replicated state the shared refactor phase refreshes
// once per collective. It mirrors svd.Incremental's update semantics —
// same block splitting, truncation rule and re-orthogonalization
// schedule — so shard counts are interchangeable up to summation
// roundoff.
//
// Like svd.Incremental, a Coordinator is not safe for concurrent updates;
// the internal fan-out is (shards write disjoint row ranges and pool
// access is locked), which is what the shards>1 race CI leg exercises.
type Coordinator struct {
	maxRank     int
	dropTol     float64
	reorthEvery int
	payload32   bool

	eng *compute.Engine
	ws  *compute.Workspace
	red Reducer

	offs []int      // len Shards+1; shard s owns rows [offs[s], offs[s+1])
	bigU *mat.Dense // m×q; shard row slices are views into this buffer
	s    []float64  // replicated singular values
	v    *mat.Dense // replicated right factor, t×q

	updates int

	// statsMu guards stats: updates mutate the accounting mid-PartialFit
	// while monitoring readers (a server metrics endpoint) call Stats from
	// their own goroutines.
	statsMu sync.Mutex
	stats   Stats
}

// NewCoordinator seeds the sharded decomposition from a first batch of
// columns, splitting its rows into near-equal contiguous shards. The seed
// factorization matches svd.NewIncrementalWith exactly (same engine-routed
// SVD, same rank cap), so a Shards=1 coordinator starts bit-identical to
// the unsharded path.
func NewCoordinator(cfg Config, first *mat.Dense) (*Coordinator, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Config.Shards must be >= 1, got %d", cfg.Shards)
	}
	if first.R < cfg.Shards {
		return nil, fmt.Errorf("shard: %d shards need at least that many rows, got %d", cfg.Shards, first.R)
	}
	ws := cfg.Workspace
	if ws == nil {
		ws = compute.NewWorkspace()
	}
	r := svd.ComputeWith(cfg.Engine, ws, first)
	if cfg.MaxRank > 0 && r.Rank() > cfg.MaxRank {
		r = r.Truncate(cfg.MaxRank)
	}
	red := cfg.Reducer
	if red == nil {
		red = &SumReducer{}
	}
	m := first.R
	offs := make([]int, cfg.Shards+1)
	for i := 1; i <= cfg.Shards; i++ {
		offs[i] = offs[i-1] + m/cfg.Shards
		if i <= m%cfg.Shards {
			offs[i]++
		}
	}
	return &Coordinator{
		maxRank:     cfg.MaxRank,
		dropTol:     svd.DefaultDropTol,
		reorthEvery: svd.DefaultReorthEvery,
		payload32:   cfg.Payload32,
		eng:         cfg.Engine,
		ws:          ws,
		red:         red,
		offs:        offs,
		bigU:        r.U,
		s:           r.S,
		v:           r.V,
		stats:       Stats{Payload32: cfg.Payload32},
	}, nil
}

// Shards returns the row-partition count.
func (c *Coordinator) Shards() int { return len(c.offs) - 1 }

// Rows returns m, the current sensor-row dimension.
func (c *Coordinator) Rows() int { return c.bigU.R }

// Cols returns t, the number of absorbed columns.
func (c *Coordinator) Cols() int { return c.v.R }

// Rank returns the current truncation rank q.
func (c *Coordinator) Rank() int { return len(c.s) }

// Stats snapshots the transport accounting. Unlike the update entry
// points, Stats is safe to call concurrently with an in-flight
// Update/AddRows — the monitoring-while-streaming pattern.
func (c *Coordinator) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// mutateStats applies fn to the accounting under the stats lock.
func (c *Coordinator) mutateStats(fn func(*Stats)) {
	c.statsMu.Lock()
	fn(&c.stats)
	c.statsMu.Unlock()
}

// rowView returns rows [lo,hi) of m as a view into its storage. Routed
// through mat.RowsView so strided column blocks (EachUpdateBlock hands
// out zero-copy views) slice correctly.
func rowView(m *mat.Dense, lo, hi int) *mat.Dense {
	return mat.RowsView(m, lo, hi)
}

// UpdateBlock absorbs cols in chunks of w columns (w <= 0 or >= cols.C
// absorbs one block), on the same svd.EachUpdateBlock schedule as the
// unsharded path — sharded and unsharded streams see identical block
// sequences by construction.
func (c *Coordinator) UpdateBlock(cols *mat.Dense, w int) {
	if cols.C == 0 {
		return // empty blocks are a no-op even with a degenerate row field
	}
	if cols.R != c.bigU.R {
		panic(fmt.Sprintf("shard: Update row mismatch %d vs %d", cols.R, c.bigU.R))
	}
	svd.EachUpdateBlock(c.ws, cols, w, c.bigU.R, c.update)
}

// Update absorbs a new block of columns (m×k), splitting blocks wider than
// the row count exactly as the unsharded path does.
func (c *Coordinator) Update(cols *mat.Dense) {
	c.UpdateBlock(cols, 0)
}

func (c *Coordinator) update(blk *mat.Dense) {
	q, w := len(c.s), blk.C
	n := c.Shards()
	elems := svd.BlockPayloadLen(q, w)

	// Shard-local projection phase, fanned out on the engine: each shard
	// reads only its own row slices.
	parts := make([][]float64, n)
	tasks := make([]func(), n)
	for sh := 0; sh < n; sh++ {
		sh := sh
		parts[sh] = c.ws.GetF64(elems)
		tasks[sh] = func() {
			u := rowView(c.bigU, c.offs[sh], c.offs[sh+1])
			cs := rowView(blk, c.offs[sh], c.offs[sh+1])
			svd.ShardBlockPayload(c.eng, c.ws, u, cs, parts[sh])
		}
	}
	c.eng.Do(tasks...)

	// The ONE collective of this update.
	payload := c.reduce(parts)
	c.mutateStats(func(s *Stats) {
		s.Updates++
		s.Reduces++
		s.LastPayloadElems = elems
	})

	// Replicated refactor phase: runs once here; on a multi-node
	// deployment every node runs it redundantly on the identical reduced
	// payload (it is deterministic), which is why nothing else crosses the
	// seam.
	plan := svd.PlanBlockUpdate(c.eng, c.ws, c.s, c.v, payload, w, c.maxRank, c.dropTol, svd.GramEps(c.payload32))
	c.ws.PutF64(payload)

	// Shard-local rotation phase into a fresh contiguous buffer; shards
	// write disjoint row ranges.
	r := len(plan.NewS)
	newBig := mat.GetDenseRaw(c.ws, c.bigU.R, r)
	for sh := 0; sh < n; sh++ {
		sh := sh
		tasks[sh] = func() {
			dst := rowView(newBig, c.offs[sh], c.offs[sh+1])
			u := rowView(c.bigU, c.offs[sh], c.offs[sh+1])
			cs := rowView(blk, c.offs[sh], c.offs[sh+1])
			svd.ApplyShardBlock(c.eng, c.ws, dst, u, cs, plan)
		}
	}
	c.eng.Do(tasks...)
	plan.Release(c.ws)
	c.install(newBig, plan.NewS, plan.NewV)

	c.updates++
	if c.reorthEvery > 0 && c.updates%c.reorthEvery == 0 {
		c.reorthogonalize()
	}
}

// reduce runs the collective in the configured payload tier and returns
// the summed payload as float64 (workspace-borrowed; caller puts it back).
// parts are consumed (returned to the pool).
func (c *Coordinator) reduce(parts [][]float64) []float64 {
	n := len(parts)
	elems := len(parts[0])
	if !c.payload32 {
		c.red.AllReduce(parts)
		c.mutateStats(func(s *Stats) {
			s.LastPayloadBytes = 8 * elems
			s.TotalBytes += int64(8 * elems * n)
		})
		sum := parts[0]
		for _, p := range parts[1:] {
			c.ws.PutF64(p)
		}
		return sum
	}
	// Mixed tier: narrow each shard's payload to float32, ship the
	// half-width collective, widen the sum for the float64 refactor of the
	// kept directions.
	parts32 := make([][]float32, n)
	for i, p := range parts {
		p32 := c.ws.GetF32(elems)
		for j, v := range p {
			p32[j] = float32(v)
		}
		parts32[i] = p32
		c.ws.PutF64(p)
	}
	c.red.AllReduce32(parts32)
	c.mutateStats(func(s *Stats) {
		s.LastPayloadBytes = 4 * elems
		s.TotalBytes += int64(4 * elems * n)
	})
	sum := c.ws.GetF64(elems)
	for j, v := range parts32[0] {
		sum[j] = float64(v)
	}
	for _, p := range parts32 {
		c.ws.PutF32(p)
	}
	return sum
}

// install swaps in the refreshed factors, recycling the old storage.
func (c *Coordinator) install(newBig *mat.Dense, newS []float64, newV *mat.Dense) {
	mat.PutDense(c.ws, c.bigU)
	mat.PutDense(c.ws, c.v)
	c.bigU, c.s, c.v = newBig, newS, newV
}

// reorthogonalize restores exact column orthonormality of the sharded U —
// the same every-8-updates schedule as the unsharded path — with one q×q
// Gram collective (always float64: it is amortized, and the refresh is
// the accuracy anchor of long streams).
func (c *Coordinator) reorthogonalize() {
	q := len(c.s)
	n := c.Shards()
	elems := svd.GramPayloadLen(q)
	parts := make([][]float64, n)
	tasks := make([]func(), n)
	for sh := 0; sh < n; sh++ {
		sh := sh
		parts[sh] = c.ws.GetF64(elems)
		tasks[sh] = func() {
			svd.ShardGramPayload(c.eng, c.ws, rowView(c.bigU, c.offs[sh], c.offs[sh+1]), parts[sh])
		}
	}
	c.eng.Do(tasks...)
	c.red.AllReduce(parts)
	c.mutateStats(func(s *Stats) {
		s.ReorthReduces++
		s.TotalBytes += int64(8 * elems * n)
	})
	payload := parts[0]
	for _, p := range parts[1:] {
		c.ws.PutF64(p)
	}

	plan := svd.PlanShardReorth(c.eng, c.ws, c.s, c.v, payload, c.maxRank, c.dropTol)
	c.ws.PutF64(payload)
	newBig := mat.GetDenseRaw(c.ws, c.bigU.R, len(plan.NewS))
	for sh := 0; sh < n; sh++ {
		sh := sh
		tasks[sh] = func() {
			svd.ApplyShardReorth(c.eng, rowView(newBig, c.offs[sh], c.offs[sh+1]), rowView(c.bigU, c.offs[sh], c.offs[sh+1]), plan)
		}
	}
	c.eng.Do(tasks...)
	plan.Release(c.ws)
	c.install(newBig, plan.NewS, plan.NewV)
}

// AddRows extends the decomposition with new sensor rows carrying their
// full column history (the AddSensors path). The new rows are appended to
// the last shard, keeping the global row order identical to the unsharded
// path; the owner-local residual factorization and the replicated
// refactor run centrally here — in wire terms the owner broadcasts
// [L | Rhᵀ] and the t×k residual basis, a structural event counted
// separately from the per-update collective.
func (c *Coordinator) AddRows(b *mat.Dense) {
	if b.C != c.v.R {
		panic(fmt.Sprintf("shard: AddRows column mismatch %d vs %d", b.C, c.v.R))
	}
	if b.R == 0 {
		return
	}
	svd.EachRowBlock(b, c.addRows)
}

func (c *Coordinator) addRows(b *mat.Dense) {
	q := len(c.s)
	k := b.R
	t := c.v.R
	n := c.Shards()
	plan := svd.PlanShardRowUpdate(c.eng, c.ws, c.s, c.v, b, c.maxRank, c.dropTol)
	c.mutateStats(func(s *Stats) {
		s.RowBroadcasts++
		s.TotalBytes += int64(8 * (k*q + k*k + t*k))
	})

	r := len(plan.NewS)
	m := c.bigU.R
	newBig := mat.GetDenseRaw(c.ws, m+k, r)
	tasks := make([]func(), n)
	for sh := 0; sh < n; sh++ {
		sh := sh
		tasks[sh] = func() {
			dst := rowView(newBig, c.offs[sh], c.offs[sh+1])
			mat.MulIntoWith(c.eng, dst, rowView(c.bigU, c.offs[sh], c.offs[sh+1]), plan.UA)
		}
	}
	c.eng.Do(tasks...)
	copy(newBig.Data[m*r:], plan.NewRows.Data)
	c.offs[n] += k
	plan.Release(c.ws)
	c.install(newBig, plan.NewS, plan.NewV)

	c.updates++
	if c.reorthEvery > 0 && c.updates%c.reorthEvery == 0 {
		c.reorthogonalize()
	}
}

// Result snapshots the decomposition with deep copies, independent of the
// pooled internals.
func (c *Coordinator) Result() *svd.Result {
	return &svd.Result{U: c.bigU.Clone(), S: append([]float64(nil), c.s...), V: c.v.Clone()}
}

// ResultView returns the live factors without copying — in-process the
// row-shards are views into one contiguous buffer, so the gather a
// multi-node deployment would pay is free. The view is read-only and
// valid only until the next Update/AddRows.
func (c *Coordinator) ResultView() *svd.Result {
	return &svd.Result{U: c.bigU, S: c.s, V: c.v}
}
