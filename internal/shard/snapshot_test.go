package shard

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"imrdmd/internal/codec"
	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
)

// TestStatsConcurrentWithUpdates is the data-race regression test for
// Stats(): a monitoring goroutine polling the transport accounting while
// PartialFit-driven updates are in flight — exactly what a server metrics
// endpoint does — must be race-clean (run under -race in CI).
func TestStatsConcurrentWithUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const (
		m     = 40
		seedT = 24
		w     = 6
	)
	blocks := 12
	data := randDense(rng, m, seedT+blocks*w)
	c, err := NewCoordinator(Config{Shards: 3, MaxRank: 12, Engine: compute.Shared(4)}, data.ColSlice(0, seedT))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := c.Stats()
				if st.TotalBytes < last {
					t.Error("TotalBytes went backwards")
					return
				}
				last = st.TotalBytes
			}
		}()
	}
	for b := 0; b < blocks; b++ {
		c.Update(data.ColSlice(seedT+b*w, seedT+(b+1)*w))
	}
	close(stop)
	wg.Wait()

	st := c.Stats()
	if st.Updates != blocks || st.Reduces != blocks {
		t.Fatalf("accounting lost updates: %+v", st)
	}
}

// TestCoordinatorSnapshotRoundTrip: encode mid-stream, decode, continue
// both — the decoded coordinator must track the original exactly,
// including across the re-orthogonalization boundary its restored update
// counter must phase correctly.
func TestCoordinatorSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	const (
		m     = 37
		seedT = 20
		w     = 5
	)
	pre, post := 6, 7 // 6+7 updates crosses reorthEvery=8 after the split
	data := randDense(rng, m, seedT+(pre+post)*w)
	for _, payload32 := range []bool{false, true} {
		ref, err := NewCoordinator(Config{Shards: 3, MaxRank: 11, Payload32: payload32, Engine: compute.Shared(4)}, data.ColSlice(0, seedT))
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < pre; b++ {
			ref.Update(data.ColSlice(seedT+b*w, seedT+(b+1)*w))
		}

		var buf bytes.Buffer
		enc := codec.NewWriter(&buf)
		ref.Encode(enc)
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		dec, err := codec.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeCoordinator(dec, compute.Shared(4), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.Close(); err != nil {
			t.Fatal(err)
		}
		if got.Shards() != ref.Shards() || got.Rank() != ref.Rank() || got.Cols() != ref.Cols() {
			t.Fatalf("restored shape: shards %d rank %d cols %d vs %d/%d/%d",
				got.Shards(), got.Rank(), got.Cols(), ref.Shards(), ref.Rank(), ref.Cols())
		}
		if got.Stats() != ref.Stats() {
			t.Fatalf("restored stats %+v vs %+v", got.Stats(), ref.Stats())
		}

		for b := pre; b < pre+post; b++ {
			blk := data.ColSlice(seedT+b*w, seedT+(b+1)*w)
			ref.Update(blk)
			got.Update(blk)
		}
		rr, gr := ref.Result(), got.Result()
		if d := relFrobDiff(gr.U, rr.U); d != 0 {
			t.Fatalf("payload32=%v: restored U deviates by %g", payload32, d)
		}
		if d := relFrobDiff(gr.V, rr.V); d != 0 {
			t.Fatalf("payload32=%v: restored V deviates by %g", payload32, d)
		}
		for i := range rr.S {
			if gr.S[i] != rr.S[i] {
				t.Fatalf("payload32=%v: σ[%d] %v vs %v", payload32, i, gr.S[i], rr.S[i])
			}
		}
	}
}

// TestDecodeCoordinatorRejectsCorruptShapes: structurally inconsistent
// streams must fail decode validation, not panic later.
func TestDecodeCoordinatorRejectsCorruptShapes(t *testing.T) {
	var buf bytes.Buffer
	enc := codec.NewWriter(&buf)
	enc.Ints([]int{0, 5})          // offsets claim 5 rows
	enc.Dense(mat.NewDense(4, 2))  // but U has 4
	enc.Floats([]float64{1, 0.5})  // rank 2
	enc.Dense(mat.NewDense(10, 2)) // V consistent with rank
	enc.Int(0)
	enc.Float(0)
	enc.Int(8)
	enc.Bool(false)
	enc.Int(0)
	for i := 0; i < 6; i++ {
		enc.Int(0)
	}
	enc.I64(0)
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	dec, err := codec.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCoordinator(dec, nil, nil, nil); err == nil {
		t.Fatal("offset/row mismatch accepted")
	}
}
