package shard

import (
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"imrdmd/internal/compute"
	"imrdmd/internal/mat"
	"imrdmd/internal/svd"
)

// envShards reads the IMRDMD_TEST_SHARDS knob the CI shards>1 leg sets, so
// the race leg can drive every suite at an odd shard count (uneven row
// splits) without a separate test list.
func envShards() (int, bool) {
	v := os.Getenv("IMRDMD_TEST_SHARDS")
	if v == "" {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// shardCounts is the default sweep, extended by the env knob.
func shardCounts() []int {
	counts := []int{1, 2, 4}
	if n, ok := envShards(); ok {
		counts = append(counts, n)
	}
	return counts
}

func randDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func relFrobDiff(a, b *mat.Dense) float64 {
	return mat.Sub(a, b).FrobNorm() / (1 + b.FrobNorm())
}

// TestCoordinatorMatchesIncremental streams identical column blocks
// through svd.Incremental and Coordinators at several shard counts, on
// both the serial path and the shared engine pool: reconstructions and
// spectra must agree to roundoff at every shard count, across the
// re-orthogonalization boundary and with the rank cap active.
func TestCoordinatorMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const (
		m       = 53
		seedT   = 32
		w       = 7
		blocks  = 10
		maxRank = 14
	)
	data := randDense(rng, m, seedT+blocks*w)
	for _, eng := range []*compute.Engine{nil, compute.Shared(4)} {
		inc := svd.NewIncrementalWith(eng, nil, data.ColSlice(0, seedT), maxRank)
		for b := 0; b < blocks; b++ {
			inc.Update(data.ColSlice(seedT+b*w, seedT+(b+1)*w))
		}
		want := inc.Result().Reconstruct()
		wantS := inc.S

		for _, nshards := range shardCounts() {
			coord, err := NewCoordinator(Config{Shards: nshards, MaxRank: maxRank, Engine: eng}, data.ColSlice(0, seedT))
			if err != nil {
				t.Fatal(err)
			}
			for b := 0; b < blocks; b++ {
				coord.Update(data.ColSlice(seedT+b*w, seedT+(b+1)*w))
			}
			if coord.Cols() != inc.Cols() || coord.Rows() != m {
				t.Fatalf("shards=%d: dims %d×%d, want %d×%d", nshards, coord.Rows(), coord.Cols(), m, inc.Cols())
			}
			res := coord.Result()
			if len(res.S) != len(wantS) {
				t.Fatalf("shards=%d: rank %d vs %d", nshards, len(res.S), len(wantS))
			}
			for i := range res.S {
				if d := math.Abs(res.S[i]-wantS[i]) / wantS[0]; d > 1e-10 {
					t.Fatalf("shards=%d: σ[%d]=%v vs %v (rel %g)", nshards, i, res.S[i], wantS[i], d)
				}
			}
			if d := relFrobDiff(res.Reconstruct(), want); d > 1e-9 {
				t.Fatalf("shards=%d: reconstruction deviates by %g (> 1e-9)", nshards, d)
			}
		}
	}
}

// TestCoordinatorSingleReducePerUpdate pins the transport contract the
// multi-node story is priced on: every column-block update performs
// exactly ONE collective, whose payload is the q×w projection with its
// w×w Gram rider — (q+w)·w elements, 8 bytes each in the float64 tier —
// and nothing else crosses the seam until the amortized reorth.
func TestCoordinatorSingleReducePerUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const (
		m     = 48
		seedT = 24
		w     = 5
	)
	data := randDense(rng, m, seedT+8*w)
	red := &SumReducer{}
	coord, err := NewCoordinator(Config{Shards: 3, MaxRank: 10, Reducer: red}, data.ColSlice(0, seedT))
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 5; b++ {
		q := coord.Rank()
		coord.Update(data.ColSlice(seedT+b*w, seedT+(b+1)*w))
		st := coord.Stats()
		if st.Updates != b+1 || st.Reduces != b+1 {
			t.Fatalf("update %d: Updates=%d Reduces=%d, want both %d", b, st.Updates, st.Reduces, b+1)
		}
		if st.ReorthReduces != 0 {
			t.Fatalf("update %d: unexpected reorth collective", b)
		}
		if want := svd.BlockPayloadLen(q, w); st.LastPayloadElems != want {
			t.Fatalf("update %d: payload %d elems, want (q+w)·w = (%d+%d)·%d = %d",
				b, st.LastPayloadElems, q, w, w, want)
		}
		if st.LastPayloadBytes != 8*st.LastPayloadElems {
			t.Fatalf("update %d: payload %d bytes, want f64-sized %d", b, st.LastPayloadBytes, 8*st.LastPayloadElems)
		}
	}
	if red.Calls() != 5 {
		t.Fatalf("reducer saw %d collectives for 5 updates", red.Calls())
	}
	// Three more updates cross the every-8 reorth boundary: exactly one
	// amortized q×q collective joins the per-update projections.
	for b := 5; b < 8; b++ {
		coord.Update(data.ColSlice(seedT+b*w, seedT+(b+1)*w))
	}
	st := coord.Stats()
	if st.Reduces != 8 || st.ReorthReduces != 1 {
		t.Fatalf("after 8 updates: Reduces=%d ReorthReduces=%d, want 8 and 1", st.Reduces, st.ReorthReduces)
	}
}

// TestCoordinatorMixedPayloadHalvesBytes pins the mixed tier's transport
// win: the same payload shape ships as float32 — exactly half the bytes —
// and the float64 refactor of the kept directions holds the result within
// screening accuracy of the float64-payload coordinator.
func TestCoordinatorMixedPayloadHalvesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const (
		m      = 40
		seedT  = 24
		w      = 6
		blocks = 6
	)
	data := randDense(rng, m, seedT+blocks*w)
	run := func(payload32 bool) (*svd.Result, Stats) {
		coord, err := NewCoordinator(Config{Shards: 2, MaxRank: 12, Payload32: payload32}, data.ColSlice(0, seedT))
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < blocks; b++ {
			coord.Update(data.ColSlice(seedT+b*w, seedT+(b+1)*w))
		}
		return coord.Result(), coord.Stats()
	}
	res64, st64 := run(false)
	res32, st32 := run(true)
	if st32.LastPayloadElems != st64.LastPayloadElems {
		t.Fatalf("payload shapes differ: %d vs %d elems", st32.LastPayloadElems, st64.LastPayloadElems)
	}
	if st32.LastPayloadBytes*2 != st64.LastPayloadBytes {
		t.Fatalf("f32 payload %d bytes, want half of %d", st32.LastPayloadBytes, st64.LastPayloadBytes)
	}
	if !st32.Payload32 || st64.Payload32 {
		t.Fatalf("Payload32 flags wrong: %v / %v", st32.Payload32, st64.Payload32)
	}
	// The narrowing perturbs the projection at f32 epsilon; the f64
	// refactor keeps the result within screening accuracy.
	if d := relFrobDiff(res32.Reconstruct(), res64.Reconstruct()); d > 1e-4 {
		t.Fatalf("mixed-payload reconstruction deviates by %g (> 1e-4)", d)
	}
	for i := range res32.S {
		if d := math.Abs(res32.S[i]-res64.S[i]) / res64.S[0]; d > 1e-5 {
			t.Fatalf("σ[%d] rel deviation %g under f32 payload", i, d)
		}
	}
}

// TestCoordinatorAddRows pins the new-sensor path: rows appended to the
// last shard keep the global row order, so results match svd.Incremental's
// AddRows; subsequent block updates run over the grown dimension.
func TestCoordinatorAddRows(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const (
		m       = 34
		extra   = 4
		seedT   = 26
		w       = 6
		maxRank = 11
	)
	data := randDense(rng, m+extra, seedT+4*w)
	top := data.RowSlice(0, m)

	for _, nshards := range shardCounts() {
		inc := svd.NewIncrementalWith(nil, nil, top.ColSlice(0, seedT), maxRank)
		coord, err := NewCoordinator(Config{Shards: nshards, MaxRank: maxRank}, top.ColSlice(0, seedT))
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < 2; b++ {
			blk := top.ColSlice(seedT+b*w, seedT+(b+1)*w)
			inc.Update(blk)
			coord.Update(blk)
		}
		hist := data.RowSlice(m, m+extra).ColSlice(0, seedT+2*w)
		inc.AddRows(hist)
		coord.AddRows(hist)
		if coord.Rows() != m+extra {
			t.Fatalf("shards=%d: %d rows after AddRows, want %d", nshards, coord.Rows(), m+extra)
		}
		if coord.Stats().RowBroadcasts == 0 {
			t.Fatalf("shards=%d: row broadcast not accounted", nshards)
		}
		for b := 2; b < 4; b++ {
			blk := data.ColSlice(seedT+b*w, seedT+(b+1)*w)
			inc.Update(blk)
			coord.Update(blk)
		}
		want := inc.Result().Reconstruct()
		got := coord.Result().Reconstruct()
		if d := relFrobDiff(got, want); d > 1e-9 {
			t.Fatalf("shards=%d: reconstruction after AddRows deviates by %g", nshards, d)
		}
	}
}

// TestCoordinatorValidation covers constructor rejection: a shard count
// below 1 and more shards than rows must fail with descriptive errors.
func TestCoordinatorValidation(t *testing.T) {
	seed := randDense(rand.New(rand.NewSource(1)), 3, 8)
	if _, err := NewCoordinator(Config{Shards: 0}, seed); err == nil {
		t.Fatal("Shards=0 accepted")
	}
	if _, err := NewCoordinator(Config{Shards: 4}, seed); err == nil {
		t.Fatal("4 shards over 3 rows accepted")
	}
	if _, err := NewCoordinator(Config{Shards: 3}, seed); err != nil {
		t.Fatalf("3 shards over 3 rows rejected: %v", err)
	}
}
