// Command imrdmd-serve runs the streaming ingestion service: a
// long-lived HTTP server that many dashboards stream telemetry into,
// each tenant owning an incremental I-mrDMD analyzer with its own
// analysis options (Precision and Shards included) while every tenant's
// kernels share one bounded worker pool.
//
// Quick start:
//
//	imrdmd-serve -addr :8077 -state-dir ./state &
//	curl -X POST localhost:8077/v1/tenants/theta \
//	     -H 'Content-Type: application/json' \
//	     -d '{"dt":20,"use_svht":true,"block_columns":8,"initial_cols":512}'
//	curl -X POST localhost:8077/v1/tenants/theta/ingest \
//	     -H 'Content-Type: text/csv' --data-binary @telemetry.csv
//	curl localhost:8077/v1/tenants/theta/spectrum
//	curl localhost:8077/v1/tenants/theta/stats
//
// Ingest bodies are CSV (rows = sensors, columns = time steps) or
// concatenated JSON batch objects {"data": [[...], ...]}. Columns buffer
// until the tenant's initial_cols seed width is reached, then stream as
// partial fits batch by batch.
//
// With -state-dir set, every seeded tenant's analyzer is snapshotted
// into the directory on graceful shutdown (SIGINT/SIGTERM) and restored
// from it at the next boot, so tenants survive restarts without
// re-streaming their history. -snapshot-every additionally snapshots on
// a timer, bounding how much streamed history a crash (as opposed to a
// graceful stop) can lose. The same binary snapshots are served by
// GET /v1/tenants/{id}/snapshot and accepted by PUT /v1/tenants/{id} —
// migrating a tenant between hosts is a curl pipe.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"imrdmd/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "listen address")
		workers    = flag.Int("workers", 0, "compute-engine worker lanes shared by all tenants (0 = GOMAXPROCS)")
		maxTenants = flag.Int("max-tenants", 0, "tenant registry cap (0 = unlimited)")
		initial    = flag.Int("initial", 256, "default seed columns for tenants that do not set initial_cols")
		stateDir   = flag.String("state-dir", "", "directory for tenant snapshots (restore at boot, snapshot at shutdown; empty = stateless)")
		snapEvery  = flag.Duration("snapshot-every", 0, "also snapshot all tenants to -state-dir on this interval (0 = shutdown only)")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, `imrdmd-serve — streaming I-mrDMD ingestion service

Per-tenant incremental analyzers behind a chunked HTTP ingest API.
Tenants choose their own analysis options (precision tier, shard count,
block-column width); all tenants share one bounded compute pool sized by
-workers, so process concurrency does not grow with tenant count.

Endpoints:
  GET    /healthz                   liveness + tenant count
  GET    /v1/tenants                tenant summaries
  POST   /v1/tenants/{id}           create (JSON options body)
  PUT    /v1/tenants/{id}           restore from a snapshot body
  DELETE /v1/tenants/{id}           drop the tenant
  POST   /v1/tenants/{id}/ingest    CSV or JSON column batches
  GET    /v1/tenants/{id}/stats     ingest/shard/latency stats
  GET    /v1/tenants/{id}/modes     retained mode and level counts
  GET    /v1/tenants/{id}/spectrum  per-mode spectrum points
  GET    /v1/tenants/{id}/error     grid reconstruction error + drift
  GET    /v1/tenants/{id}/events    SSE push stream, one event per publish
  GET    /v1/tenants/{id}/snapshot  binary analyzer snapshot

Query endpoints are lock-free (served from the copy-on-write published
result), return strong ETags and X-Imrdmd-Version, and honor
If-None-Match with 304; /spectrum takes ?since=<version> for deltas.

Flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()

	s := server.New(server.Config{
		Workers:            *workers,
		MaxTenants:         *maxTenants,
		DefaultInitialCols: *initial,
	})
	if *stateDir != "" {
		ids, err := s.RestoreDir(*stateDir)
		if err != nil {
			// Per-file failures must not crash-loop the whole service —
			// the intact tenants are up; the broken files stay on disk
			// for inspection.
			log.Printf("restore %s: WARNING, some snapshots skipped: %v", *stateDir, err)
		}
		if len(ids) > 0 {
			log.Printf("restored %d tenant(s) from %s: %v", len(ids), *stateDir, ids)
		}
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("imrdmd-serve listening on %s (workers=%d)", *addr, *workers)

	// Periodic background snapshots: each tick snapshots every seeded
	// tenant through the same atomic write-temp-then-rename path the
	// shutdown snapshot uses, so a crash between ticks loses at most one
	// interval of streamed history.
	if *snapEvery > 0 && *stateDir != "" {
		go func() {
			tick := time.NewTicker(*snapEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					n, err := s.SnapshotAll(*stateDir)
					if err != nil {
						log.Printf("periodic snapshot to %s: WARNING: %v", *stateDir, err)
						continue
					}
					log.Printf("periodic snapshot: %d tenant(s) to %s", n, *stateDir)
				}
			}
		}()
	} else if *snapEvery > 0 {
		log.Printf("WARNING: -snapshot-every ignored without -state-dir")
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	// Sever the SSE push streams first: Shutdown waits for in-flight
	// handlers, and /events handlers run until their subscription ends.
	s.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	if *stateDir != "" {
		n, err := s.SnapshotAll(*stateDir)
		if err != nil {
			log.Fatalf("snapshot to %s: %v", *stateDir, err)
		}
		log.Printf("snapshotted %d tenant(s) to %s", n, *stateDir)
	}
}
