// Command imrdmd-vet is the repo's invariant-enforcing analyzer suite —
// five custom static analyses over contracts earlier PRs established
// (see DESIGN.md §11):
//
//	wspair       pooled workspace Get*/Put* pairing on all return paths
//	lockio       no marshaling / client I/O under tenant or registry locks
//	cowpublish   PublishedResult immutable after the atomic swap
//	detorder     kernel packages stay deterministic (no map-order or clock)
//	codecbounds  request-derived bytes decode via internal/codec only
//
// It runs two ways:
//
//	go vet -vettool=$(pwd)/bin/imrdmd-vet ./...   # cmd/go drives it (CI)
//	imrdmd-vet ./...                              # standalone, same findings
//
// Exit status: 0 clean, 1 tool failure, 2 findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"imrdmd/internal/analysis"
	"imrdmd/internal/analysis/codecbounds"
	"imrdmd/internal/analysis/cowpublish"
	"imrdmd/internal/analysis/detorder"
	"imrdmd/internal/analysis/lockio"
	"imrdmd/internal/analysis/wspair"
)

func main() {
	os.Exit(run())
}

func run() int {
	all := []*analysis.Analyzer{
		codecbounds.Analyzer,
		cowpublish.Analyzer,
		detorder.Analyzer,
		lockio.Analyzer,
		wspair.Analyzer,
	}

	fs := flag.NewFlagSet("imrdmd-vet", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go passes -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the supported flags as JSON and exit")
	jsonFlag := fs.Bool("json", false, "emit JSON output")
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i > 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, false, doc)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 1
	}

	switch {
	case *versionFlag != "":
		analysis.PrintVersion(os.Stdout)
		return 0
	case *flagsFlag:
		analysis.PrintFlags(os.Stdout, all)
		return 0
	}

	// Vet convention: naming any analyzer flag explicitly selects that
	// subset; naming none runs everything.
	selected := all[:0:0]
	for _, a := range all {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = all
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return analysis.RunUnitchecker(args[0], selected, *jsonFlag, os.Stdout, os.Stderr)
	}

	// Standalone mode over package patterns.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	units, err := analysis.LoadPackages(".", args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imrdmd-vet: %v\n", err)
		return 1
	}
	found := false
	for _, u := range units {
		diags, err := analysis.Run(u, selected)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imrdmd-vet: %v\n", err)
			return 1
		}
		for _, d := range diags {
			found = true
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Posn, d.Message, d.Analyzer)
		}
	}
	if found {
		return 2
	}
	return 0
}
