// Command loggen generates the synthetic multifidelity logs this
// repository substitutes for the paper's facility-private data: an
// environment-log sensor matrix (CSV, one sensor per row), a Cobalt-style
// job log, and a hardware error log, all deterministic under -seed.
//
// Example:
//
//	loggen -profile theta -nodes 256 -steps 2000 -out ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"imrdmd/internal/hwlog"
	"imrdmd/internal/joblog"
	"imrdmd/internal/stream"
	"imrdmd/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loggen: ")
	var (
		profile = flag.String("profile", "theta", "sensor profile: theta | polaris-gpu")
		nodes   = flag.Int("nodes", 256, "number of node sensors")
		steps   = flag.Int("steps", 2000, "number of time steps")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		outDir  = flag.String("out", ".", "output directory")
		jobs    = flag.Bool("jobs", true, "generate a job schedule and couple temperatures to it")
		hw      = flag.Bool("hw", true, "generate a hardware error log")
		hotN    = flag.Int("hot", 2, "number of injected persistently hot nodes")
		stalled = flag.Int("stalled", 1, "number of injected stalled nodes")
	)
	flag.Parse()

	var prof telemetry.Profile
	switch *profile {
	case "theta":
		prof = telemetry.ThetaEnv()
	case "polaris-gpu":
		prof = telemetry.PolarisGPU()
	default:
		log.Fatalf("unknown profile %q", *profile)
	}

	horizon := float64(*steps) * prof.SampleInterval
	gen := telemetry.NewGenerator(prof, *nodes, *seed)

	var sched *joblog.Schedule
	if *jobs {
		sched = joblog.Simulate(joblog.SimConfig{
			NumNodes: *nodes, Horizon: horizon, Seed: *seed,
			MeanInterarrival: horizon / 50, MeanDuration: horizon / 6,
		})
		gen.Schedule = sched
	}
	for i := 0; i < *hotN; i++ {
		gen.Anomalies = append(gen.Anomalies, telemetry.Anomaly{
			Kind: telemetry.HotNode, Node: (i*37 + 5) % *nodes,
			Start: 0, End: horizon, Magnitude: 12,
		})
	}
	for i := 0; i < *stalled; i++ {
		gen.Anomalies = append(gen.Anomalies, telemetry.Anomaly{
			Kind: telemetry.StalledNode, Node: (i*53 + 11) % *nodes,
			Start: horizon / 4, End: horizon,
		})
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	writeFile := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println("wrote", path)
	}

	writeFile("env.csv", func(f *os.File) error {
		return stream.WriteCSV(f, gen.Matrix(0, *steps))
	})
	if sched != nil {
		writeFile("jobs.csv", func(f *os.File) error { return sched.WriteCSV(f) })
	}
	if *hw {
		hlog := hwlog.Generate(hwlog.GenConfig{
			NumNodes: *nodes, Horizon: horizon, Seed: *seed, BackgroundRate: 0.05,
			Bursts: []hwlog.Burst{
				{Node: 7 % *nodes, Cat: hwlog.MemCorrectable, Start: horizon / 3, End: 2 * horizon / 3, Count: 20},
			},
		})
		writeFile("hwlog.csv", func(f *os.File) error { return hlog.WriteCSV(f) })
	}
	fmt.Printf("profile=%s nodes=%d steps=%d dt=%.0fs horizon=%.1fh\n",
		prof.Name, *nodes, *steps, prof.SampleInterval, horizon/3600)
}
