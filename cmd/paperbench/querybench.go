package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"imrdmd/internal/bench"
	"imrdmd/internal/server"
	"imrdmd/internal/stream"
)

// queryThroughput prices the lock-free read path under the paper's
// million-dashboard scenario: one SC Log tenant seeded with 2000 columns
// keeps absorbing 40-column PartialFit batches over HTTP while `readers`
// concurrent pollers hammer the published endpoints (spectrum, modes,
// error, stats) as fast as they can. Reported are the sustained reads/s
// with the read-side tail latency, plus the ingest latency distribution
// measured IN the same window — the number that shows whether query
// traffic perturbs the write path (it must not: reads never take the
// tenant lock).
func queryThroughput(workers, blockColumns, readers int, measure time.Duration) (benchMetric, error) {
	const (
		p      = 200
		seedT  = 2000
		batchW = 40
		pool   = 30 // pre-rendered ingest bodies, cycled by the writer
	)
	data := bench.SCLogData(p, seedT+pool*batchW, 1)

	s := server.New(server.Config{Workers: workers})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The default transport's 2 idle conns per host would make N pollers
	// serialize on connection churn; dashboards keep-alive their way in.
	tr := &http.Transport{MaxIdleConnsPerHost: readers + 4}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	do := func(method, path, ct string, body []byte, want int) error {
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			return fmt.Errorf("%s %s: status %d (%s)", method, path, resp.StatusCode, out)
		}
		return nil
	}

	opts := fmt.Sprintf(`{"dt":20,"max_levels":6,"max_cycles":2,"use_svht":true,"parallel":true,"block_columns":%d,"initial_cols":%d}`,
		blockColumns, seedT)
	if err := do("POST", "/v1/tenants/qbench", "application/json", []byte(opts), http.StatusCreated); err != nil {
		return benchMetric{}, err
	}
	var seed bytes.Buffer
	if err := stream.WriteCSV(&seed, data.ColSlice(0, seedT)); err != nil {
		return benchMetric{}, err
	}
	if err := do("POST", "/v1/tenants/qbench/ingest", "text/csv", seed.Bytes(), http.StatusOK); err != nil {
		return benchMetric{}, err
	}

	bodies := make([][]byte, pool)
	for b := range bodies {
		sl := data.ColSlice(seedT+b*batchW, seedT+(b+1)*batchW)
		rows := make([][]float64, sl.R)
		for i := range rows {
			rows[i] = sl.Row(i)
		}
		body, err := json.Marshal(stream.JSONBatch{Data: rows})
		if err != nil {
			return benchMetric{}, err
		}
		bodies[b] = body
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: keep the tenant mid-PartialFit-stream for the whole window.
	var ingestLat []time.Duration
	var ingestErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			if err := do("POST", "/v1/tenants/qbench/ingest", "application/json", bodies[i%pool], http.StatusOK); err != nil {
				ingestErr = err
				return
			}
			ingestLat = append(ingestLat, time.Since(t0))
		}
	}()

	paths := [...]string{
		"/v1/tenants/qbench/spectrum",
		"/v1/tenants/qbench/modes",
		"/v1/tenants/qbench/error",
		"/v1/tenants/qbench/stats",
	}
	type readerResult struct {
		lat []time.Duration
		err error
	}
	results := make([]readerResult, readers)
	start := time.Now()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			res := &results[r]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if err := do("GET", paths[(r+i)%len(paths)], "", nil, http.StatusOK); err != nil {
					res.err = err
					return
				}
				res.lat = append(res.lat, time.Since(t0))
			}
		}(r)
	}
	time.Sleep(measure)
	close(stop)
	wg.Wait()
	wall := time.Since(start)

	if ingestErr != nil {
		return benchMetric{}, fmt.Errorf("ingest during query bench: %w", ingestErr)
	}
	var readLat []time.Duration
	for _, res := range results {
		if res.err != nil {
			return benchMetric{}, fmt.Errorf("reader during query bench: %w", res.err)
		}
		readLat = append(readLat, res.lat...)
	}
	if len(readLat) == 0 {
		return benchMetric{}, fmt.Errorf("query bench recorded no reads in %v", measure)
	}
	sort.Slice(readLat, func(i, j int) bool { return readLat[i] < readLat[j] })
	var readTotal time.Duration
	for _, d := range readLat {
		readTotal += d
	}
	m := benchMetric{
		NsPerOp:     int64(readTotal) / int64(len(readLat)),
		N:           len(readLat),
		Readers:     readers,
		ReadsPerSec: float64(len(readLat)) / wall.Seconds(),
		ReadP50Ms:   float64(stream.Quantile(readLat, 0.50)) / float64(time.Millisecond),
		ReadP99Ms:   float64(stream.Quantile(readLat, 0.99)) / float64(time.Millisecond),
	}
	if len(ingestLat) > 0 {
		sorted := append([]time.Duration(nil), ingestLat...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		m.BatchesPerSec = float64(len(ingestLat)) / wall.Seconds()
		m.P50Ms = float64(stream.Quantile(sorted, 0.50)) / float64(time.Millisecond)
		m.P99Ms = float64(stream.Quantile(sorted, 0.99)) / float64(time.Millisecond)
	}
	return m, nil
}
