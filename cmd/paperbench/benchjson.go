package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"imrdmd/internal/bench"
	"imrdmd/internal/compute"
	"imrdmd/internal/core"
	"imrdmd/internal/mat"
	"imrdmd/internal/telemetry"
)

// benchSnapshot is the perf-trajectory record emitted by -bench-json: the
// hot-path metrics the kernel work optimizes (dense multiply variants in
// both precision tiers and streamed PartialFit), captured per PR so
// regressions are diffable. Entries with an `_f32` / `_mixed` suffix run
// the float32 screening tier; their GFLOPS against the f64 entries of the
// same shape measure the mixed-precision speedup. Entries with a
// `_shardsN` suffix run the streaming episode with the level-1 SVD
// row-partitioned across N shards (N=1 is the unsharded baseline of the
// scaling sweep).
type benchSnapshot struct {
	GOOS         string                 `json:"goos"`
	GOARCH       string                 `json:"goarch"`
	GoVersion    string                 `json:"go_version"`
	GOMAXPROCS   int                    `json:"gomaxprocs"`
	Workers      int                    `json:"workers"`
	BlockColumns int                    `json:"block_columns"`
	Benchmarks   map[string]benchMetric `json:"benchmarks"`
}

type benchMetric struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	N           int   `json:"n"`
	// GFLOPS is reported for kernel benchmarks with a closed-form flop
	// count (multiply/Gram); higher-level pipeline benchmarks omit it.
	GFLOPS float64 `json:"gflops,omitempty"`
	// Ingest-throughput entries (the server benchmark) report end-to-end
	// batch rate and tail latency instead of flops: NsPerOp is the mean
	// per-batch HTTP round trip, these carry the distribution.
	BatchesPerSec float64 `json:"batches_per_sec,omitempty"`
	P50Ms         float64 `json:"p50_ms,omitempty"`
	P99Ms         float64 `json:"p99_ms,omitempty"`
	// Query-throughput entries report the lock-free read path: sustained
	// reads/s across Readers concurrent pollers (NsPerOp is the mean read
	// round trip, ReadP* the read-side tail) while the same tenant keeps
	// streaming PartialFit batches — whose in-window latency rides in
	// BatchesPerSec/P50Ms/P99Ms above.
	Readers     int     `json:"readers,omitempty"`
	ReadsPerSec float64 `json:"reads_per_sec,omitempty"`
	ReadP50Ms   float64 `json:"read_p50_ms,omitempty"`
	ReadP99Ms   float64 `json:"read_p99_ms,omitempty"`
}

func metricOf(r testing.BenchmarkResult) benchMetric {
	return benchMetric{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
	}
}

// kernelMetricOf is metricOf plus the GFLOPS rate for a kernel that
// executes the given number of floating-point operations per op.
func kernelMetricOf(r testing.BenchmarkResult, flops int64) benchMetric {
	m := metricOf(r)
	if m.NsPerOp > 0 {
		m.GFLOPS = float64(flops) / float64(m.NsPerOp)
	}
	return m
}

// writeBenchJSON runs the kernel and PartialFit micro-benchmarks
// in-process and writes the snapshot to path (e.g. BENCH_pr2.json).
func writeBenchJSON(path string, workers int) error {
	// The streaming benchmark runs with block-column updates enabled (the
	// production streaming configuration); the accuracy-equivalence of
	// block sizes is test-enforced in internal/core.
	const blockColumns = 8
	snap := benchSnapshot{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      workers,
		BlockColumns: blockColumns,
		Benchmarks:   map[string]benchMetric{},
	}

	rng := rand.New(rand.NewSource(1))
	const n = 512
	a := mat.NewDense(n, n)
	b := mat.NewDense(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		b.Data[i] = rng.NormFloat64()
	}
	// Route through the same engine the workers flag selects so the
	// snapshot's numbers match its recorded configuration.
	eng := compute.Shared(workers)
	const mulFlops = 2 * int64(n) * int64(n) * int64(n)
	snap.Benchmarks["mul_512x512"] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			_ = mat.MulWith(eng, nil, a, b)
		}
	}), mulFlops)
	snap.Benchmarks["mult_512x512"] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			_ = mat.MulTWith(eng, nil, a, b)
		}
	}), mulFlops)
	snap.Benchmarks["gram_rows_512x512"] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			_ = mat.GramWith(eng, nil, a, false)
		}
	}), mulFlops)

	// Screening-tier kernels on the same shapes: the f32/f64 GFLOPS ratio
	// at 512×512 is the mixed-precision tier's kernel speedup (the 8-wide
	// 4×8 micro-kernel vs the 4-wide 4×4 one).
	a32 := mat.NewDense32(n, n)
	b32 := mat.NewDense32(n, n)
	for i := range a32.Data {
		a32.Data[i] = float32(a.Data[i])
		b32.Data[i] = float32(b.Data[i])
	}
	snap.Benchmarks["mul_f32_512x512"] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			_ = mat.MulWith(eng, nil, a32, b32)
		}
	}), mulFlops)
	snap.Benchmarks["mult_f32_512x512"] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			_ = mat.MulTWith(eng, nil, a32, b32)
		}
	}), mulFlops)

	// Fixed streaming episode per iteration: rebuild the analyzer (off
	// the clock) and time five 40-column partial fits over T=2000→2200.
	// Keeping the absorbed range identical every iteration makes the
	// recorded numbers independent of how high testing.Benchmark scales
	// N, so snapshots stay comparable across machines and PRs.
	data := bench.SCLogData(200, 2200, 1)
	opts := core.Options{
		DT: 20, MaxLevels: 6, MaxCycles: 2, UseSVHT: true,
		Parallel: true, Workers: workers, BlockColumns: blockColumns,
	}
	partialFit := func(data *mat.Dense, opts core.Options) benchMetric {
		initial := data.ColSlice(0, 2000)
		blocks := make([]*mat.Dense, 5)
		for i := range blocks {
			blocks[i] = data.ColSlice(2000+40*i, 2000+40*(i+1))
		}
		return metricOf(testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				tb.StopTimer()
				inc := core.NewIncremental(opts)
				if err := inc.InitialFit(initial); err != nil {
					tb.Fatal(err)
				}
				tb.StartTimer()
				for _, blk := range blocks {
					if _, err := inc.PartialFit(blk); err != nil {
						tb.Fatal(err)
					}
				}
			}
		}))
	}
	snap.Benchmarks["partial_fit_sclog_t2000_x5"] = partialFit(data, opts)
	// Same episode with the f32 screening tier on the subtree windows.
	mixedOpts := opts
	mixedOpts.Precision = core.PrecisionMixed
	snap.Benchmarks["partial_fit_mixed_sclog_t2000_x5"] = partialFit(data, mixedOpts)

	// Shard-scaling sweep on the SC Log and GPU Metrics scenarios: the
	// same episode with the streaming level-1 SVD row-partitioned. The
	// in-process reducer puts no wire on the clock, so these entries
	// price the phase split itself (payload build, collective sum,
	// replicated refactor, per-shard rotations) against the unsharded
	// shards1 baseline.
	gpuData := bench.GPUData(200, 2200, 1)
	gpuOpts := opts
	gpuOpts.DT = telemetry.PolarisGPU().SampleInterval
	for _, s := range []int{1, 2, 4} {
		if s == 1 {
			// Shards=1 selects the identical unsharded path and options as
			// the base sclog entry — record the sweep's baseline under its
			// key without paying a duplicate episode.
			snap.Benchmarks["partial_fit_sclog_shards1_t2000_x5"] = snap.Benchmarks["partial_fit_sclog_t2000_x5"]
		} else {
			so := opts
			so.Shards = s
			snap.Benchmarks[fmt.Sprintf("partial_fit_sclog_shards%d_t2000_x5", s)] = partialFit(data, so)
		}
		sg := gpuOpts
		sg.Shards = s
		snap.Benchmarks[fmt.Sprintf("partial_fit_gpu_shards%d_t2000_x5", s)] = partialFit(gpuData, sg)
	}

	// End-to-end ingestion throughput through the streaming service: one
	// tenant seeded with the SC Log scenario's first 2000 columns, then 50
	// 40-column JSON batches over real HTTP — codec, feeder, PartialFit
	// and response marshaling all on the clock. The p50/p99 split shows
	// the re-orthogonalization and drift-recompute spikes a dashboard
	// sees, which mean-only numbers hide.
	m, err := ingestThroughput(workers, blockColumns)
	if err != nil {
		return err
	}
	snap.Benchmarks["ingest_throughput_sclog_b40_x50"] = m

	// Lock-free read-path sweep: the same streaming tenant polled by 1, 2,
	// 4 and 8 concurrent readers for a fixed window each. The reads/s and
	// read tail price the copy-on-write publication; the per-entry ingest
	// p50/p99 show the write path holding steady under query load.
	for _, rc := range []int{1, 2, 4, 8} {
		qm, err := queryThroughput(workers, blockColumns, rc, 1200*time.Millisecond)
		if err != nil {
			return err
		}
		snap.Benchmarks[fmt.Sprintf("query_throughput_sclog_r%d", rc)] = qm
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
