package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"imrdmd/internal/bench"
	"imrdmd/internal/compute"
	"imrdmd/internal/core"
	"imrdmd/internal/mat"
	"imrdmd/internal/telemetry"
)

// benchSnapshot is the perf-trajectory record emitted by -bench-json: the
// hot-path metrics the kernel work optimizes (dense multiply variants in
// both precision tiers and streamed PartialFit), captured per PR so
// regressions are diffable. Entries with an `_f32` / `_mixed` suffix run
// the float32 screening tier; their GFLOPS against the f64 entries of the
// same shape measure the mixed-precision speedup. Entries with a
// `_shardsN` suffix run the streaming episode with the level-1 SVD
// row-partitioned across N shards (N=1 is the unsharded baseline of the
// scaling sweep).
type benchSnapshot struct {
	GOOS         string                 `json:"goos"`
	GOARCH       string                 `json:"goarch"`
	GoVersion    string                 `json:"go_version"`
	GOAMD64      string                 `json:"goamd64,omitempty"`
	GOMAXPROCS   int                    `json:"gomaxprocs"`
	Workers      int                    `json:"workers"`
	BlockColumns int                    `json:"block_columns"`
	Kernel       benchKernel            `json:"kernel"`
	Benchmarks   map[string]benchMetric `json:"benchmarks"`
}

// benchKernel records the GEMM dispatch configuration the snapshot ran
// under — without the ISA tier and derived blocking, kernel GFLOPS are not
// comparable across hosts or across PRs that change the autotuner.
type benchKernel struct {
	// Tier is the micro-kernel family chosen at boot: "avx512", "avx2" or
	// "generic" (hardware-detected, possibly capped by IMRDMD_GEMM_KERNEL).
	Tier string `json:"tier"`
	// Tuned is false when IMRDMD_GEMM_TUNE=off pinned the historical
	// blocking instead of deriving it from the cache probe.
	Tuned bool `json:"tuned"`
	// L1D/L2/L3 are the probed per-core cache sizes in bytes (0 = unknown).
	L1DBytes int `json:"l1d_bytes,omitempty"`
	L2Bytes  int `json:"l2_bytes,omitempty"`
	L3Bytes  int `json:"l3_bytes,omitempty"`
	// F64/F32 are the per-precision tile geometry and KC/MC/NC blocking.
	F64 benchKernelParams `json:"f64"`
	F32 benchKernelParams `json:"f32"`
}

type benchKernelParams struct {
	MR int `json:"mr"`
	NR int `json:"nr"`
	KC int `json:"kc"`
	MC int `json:"mc"`
	NC int `json:"nc"`
}

func kernelSnapshot() benchKernel {
	ki := mat.Kernel()
	pub := func(p mat.KernelParams) benchKernelParams {
		return benchKernelParams{MR: p.MR, NR: p.NR, KC: p.KC, MC: p.MC, NC: p.NC}
	}
	return benchKernel{
		Tier:     ki.Tier,
		Tuned:    ki.Tuned,
		L1DBytes: ki.L1D,
		L2Bytes:  ki.L2,
		L3Bytes:  ki.L3,
		F64:      pub(ki.F64),
		F32:      pub(ki.F32),
	}
}

// printKernelInfo dumps the boot-time GEMM configuration (the -kernel-info
// flag; CI's bench smoke prints it so every log records which tier ran).
func printKernelInfo() {
	ki := mat.Kernel()
	fmt.Printf("gemm kernel: tier=%s tuned=%v goamd64=%q\n", ki.Tier, ki.Tuned, goamd64Setting())
	fmt.Printf("caches: L1d=%d L2=%d L3=%d bytes\n", ki.L1D, ki.L2, ki.L3)
	fmt.Printf("f64: MR=%d NR=%d KC=%d MC=%d NC=%d\n", ki.F64.MR, ki.F64.NR, ki.F64.KC, ki.F64.MC, ki.F64.NC)
	fmt.Printf("f32: MR=%d NR=%d KC=%d MC=%d NC=%d\n", ki.F32.MR, ki.F32.NR, ki.F32.KC, ki.F32.MC, ki.F32.NC)
}

// goamd64Setting reports the GOAMD64 microarchitecture level the binary
// was compiled for (from the embedded build info; empty if unrecorded).
func goamd64Setting() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "GOAMD64" {
				return s.Value
			}
		}
	}
	return ""
}

type benchMetric struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	N           int   `json:"n"`
	// GFLOPS is reported for kernel benchmarks with a closed-form flop
	// count (multiply/Gram); higher-level pipeline benchmarks omit it.
	GFLOPS float64 `json:"gflops,omitempty"`
	// Ingest-throughput entries (the server benchmark) report end-to-end
	// batch rate and tail latency instead of flops: NsPerOp is the mean
	// per-batch HTTP round trip, these carry the distribution.
	BatchesPerSec float64 `json:"batches_per_sec,omitempty"`
	P50Ms         float64 `json:"p50_ms,omitempty"`
	P99Ms         float64 `json:"p99_ms,omitempty"`
	// Query-throughput entries report the lock-free read path: sustained
	// reads/s across Readers concurrent pollers (NsPerOp is the mean read
	// round trip, ReadP* the read-side tail) while the same tenant keeps
	// streaming PartialFit batches — whose in-window latency rides in
	// BatchesPerSec/P50Ms/P99Ms above.
	Readers     int     `json:"readers,omitempty"`
	ReadsPerSec float64 `json:"reads_per_sec,omitempty"`
	ReadP50Ms   float64 `json:"read_p50_ms,omitempty"`
	ReadP99Ms   float64 `json:"read_p99_ms,omitempty"`
	// Longrun entries (the flat-horizon streaming sweep) report the
	// per-tenant resident raw-history footprint at the probe point from
	// the analyzer's own tier accounting, and how many of those columns
	// sit in the f32 cold tier. Their NsPerOp is the median of N
	// hand-timed batches on one long-lived analyzer, not a
	// testing.Benchmark rebuild loop.
	ResidentBytes int64 `json:"resident_bytes,omitempty"`
	RawColdCols   int   `json:"raw_cold_cols,omitempty"`
}

func metricOf(r testing.BenchmarkResult) benchMetric {
	return benchMetric{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
	}
}

// kernelMetricOf is metricOf plus the GFLOPS rate for a kernel that
// executes the given number of floating-point operations per op.
func kernelMetricOf(r testing.BenchmarkResult, flops int64) benchMetric {
	m := metricOf(r)
	if m.NsPerOp > 0 {
		m.GFLOPS = float64(flops) / float64(m.NsPerOp)
	}
	return m
}

// writeBenchJSON runs the kernel and PartialFit micro-benchmarks
// in-process and writes the snapshot to path (e.g. BENCH_pr2.json).
func writeBenchJSON(path string, workers int) error {
	// The streaming benchmark runs with block-column updates enabled (the
	// production streaming configuration); the accuracy-equivalence of
	// block sizes is test-enforced in internal/core.
	const blockColumns = 8
	snap := benchSnapshot{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GoVersion:    runtime.Version(),
		GOAMD64:      goamd64Setting(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      workers,
		BlockColumns: blockColumns,
		Kernel:       kernelSnapshot(),
		Benchmarks:   map[string]benchMetric{},
	}

	// Kernel sweep over the cache-behavior regimes: 256 (operands fit L2),
	// 512 (the historical trajectory size) and 1024 (panel streaming from
	// L3). Each size gets multiply and Gram in both precision tiers; the
	// f32/f64 GFLOPS ratio at equal shape is the mixed-precision kernel
	// speedup. MulT rides along at 512 only (its packing absorbs the
	// transpose, so its rate tracks mul's).
	rng := rand.New(rand.NewSource(1))
	// Route through the same engine the workers flag selects so the
	// snapshot's numbers match its recorded configuration.
	eng := compute.Shared(workers)
	for _, n := range []int{256, 512, 1024} {
		a := mat.NewDense(n, n)
		b := mat.NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		a32 := mat.NewDense32(n, n)
		b32 := mat.NewDense32(n, n)
		for i := range a32.Data {
			a32.Data[i] = float32(a.Data[i])
			b32.Data[i] = float32(b.Data[i])
		}
		mulFlops := 2 * int64(n) * int64(n) * int64(n)
		sz := fmt.Sprintf("%dx%d", n, n)
		snap.Benchmarks["mul_"+sz] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				_ = mat.MulWith(eng, nil, a, b)
			}
		}), mulFlops)
		snap.Benchmarks["gram_rows_"+sz] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				_ = mat.GramWith(eng, nil, a, false)
			}
		}), mulFlops)
		snap.Benchmarks["mul_f32_"+sz] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				_ = mat.MulWith(eng, nil, a32, b32)
			}
		}), mulFlops)
		snap.Benchmarks["gram_rows_f32_"+sz] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				_ = mat.GramWith(eng, nil, a32, false)
			}
		}), mulFlops)
		if n == 512 {
			snap.Benchmarks["mult_"+sz] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					_ = mat.MulTWith(eng, nil, a, b)
				}
			}), mulFlops)
			snap.Benchmarks["mult_f32_"+sz] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					_ = mat.MulTWith(eng, nil, a32, b32)
				}
			}), mulFlops)
		}
	}

	// Tall-skinny sweep over the streaming hot shapes (see DESIGN.md §5):
	// proj_* is the per-update Uᵀ·C projection (tiny output, huge inner
	// dimension) at the two rank caps the analyzer runs between, and
	// skinny_mul_* covers the skinny-B and rank-w outer-product classes.
	// These route through the pack-free skinny tier; IMRDMD_GEMM_SKINNY=off
	// re-times the identical shapes on the packed path.
	for _, q := range []int{32, 64} {
		const pdim, w = 4096, 8
		u := mat.NewDense(pdim, q)
		c := mat.NewDense(pdim, w)
		for i := range u.Data {
			u.Data[i] = rng.NormFloat64()
		}
		for i := range c.Data {
			c.Data[i] = rng.NormFloat64()
		}
		projFlops := 2 * int64(q) * int64(pdim) * int64(w)
		snap.Benchmarks[fmt.Sprintf("proj_q%d_p%d_w%d", q, pdim, w)] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			dst := mat.NewDense(q, w)
			for i := 0; i < tb.N; i++ {
				mat.MulTIntoWith(eng, dst, u, c)
			}
		}), projFlops)
	}
	for _, sh := range []struct{ m, k, n int }{{200, 64, 8}, {200, 8, 48}} {
		a := mat.NewDense(sh.m, sh.k)
		b := mat.NewDense(sh.k, sh.n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		flops := 2 * int64(sh.m) * int64(sh.k) * int64(sh.n)
		snap.Benchmarks[fmt.Sprintf("skinny_mul_%dx%dx%d", sh.m, sh.k, sh.n)] = kernelMetricOf(testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			dst := mat.NewDense(sh.m, sh.n)
			for i := 0; i < tb.N; i++ {
				mat.MulIntoWith(eng, dst, a, b)
			}
		}), flops)
	}

	// Fixed streaming episode per iteration: rebuild the analyzer (off
	// the clock) and time five 40-column partial fits over T=2000→2200.
	// Keeping the absorbed range identical every iteration makes the
	// recorded numbers independent of how high testing.Benchmark scales
	// N, so snapshots stay comparable across machines and PRs.
	data := bench.SCLogData(200, 2200, 1)
	opts := core.Options{
		DT: 20, MaxLevels: 6, MaxCycles: 2, UseSVHT: true,
		Parallel: true, Workers: workers, BlockColumns: blockColumns,
	}
	partialFit := func(data *mat.Dense, opts core.Options) benchMetric {
		initial := data.ColSlice(0, 2000)
		blocks := make([]*mat.Dense, 5)
		for i := range blocks {
			blocks[i] = data.ColSlice(2000+40*i, 2000+40*(i+1))
		}
		return metricOf(testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				tb.StopTimer()
				inc := core.NewIncremental(opts)
				if err := inc.InitialFit(initial); err != nil {
					tb.Fatal(err)
				}
				tb.StartTimer()
				for _, blk := range blocks {
					if _, err := inc.PartialFit(blk); err != nil {
						tb.Fatal(err)
					}
				}
			}
		}))
	}
	snap.Benchmarks["partial_fit_sclog_t2000_x5"] = partialFit(data, opts)
	// Same episode with the f32 screening tier on the subtree windows.
	mixedOpts := opts
	mixedOpts.Precision = core.PrecisionMixed
	snap.Benchmarks["partial_fit_mixed_sclog_t2000_x5"] = partialFit(data, mixedOpts)

	// Shard-scaling sweep on the SC Log and GPU Metrics scenarios: the
	// same episode with the streaming level-1 SVD row-partitioned. The
	// in-process reducer puts no wire on the clock, so these entries
	// price the phase split itself (payload build, collective sum,
	// replicated refactor, per-shard rotations) against the unsharded
	// shards1 baseline.
	gpuData := bench.GPUData(200, 2200, 1)
	gpuOpts := opts
	gpuOpts.DT = telemetry.PolarisGPU().SampleInterval
	for _, s := range []int{1, 2, 4} {
		if s == 1 {
			// Shards=1 selects the identical unsharded path and options as
			// the base sclog entry — record the sweep's baseline under its
			// key without paying a duplicate episode.
			snap.Benchmarks["partial_fit_sclog_shards1_t2000_x5"] = snap.Benchmarks["partial_fit_sclog_t2000_x5"]
		} else {
			so := opts
			so.Shards = s
			snap.Benchmarks[fmt.Sprintf("partial_fit_sclog_shards%d_t2000_x5", s)] = partialFit(data, so)
		}
		sg := gpuOpts
		sg.Shards = s
		snap.Benchmarks[fmt.Sprintf("partial_fit_gpu_shards%d_t2000_x5", s)] = partialFit(gpuData, sg)
	}

	// End-to-end ingestion throughput through the streaming service: one
	// tenant seeded with the SC Log scenario's first 2000 columns, then 50
	// 40-column JSON batches over real HTTP — codec, feeder, PartialFit
	// and response marshaling all on the clock. The p50/p99 split shows
	// the re-orthogonalization and drift-recompute spikes a dashboard
	// sees, which mean-only numbers hide.
	m, err := ingestThroughput(workers, blockColumns)
	if err != nil {
		return err
	}
	snap.Benchmarks["ingest_throughput_sclog_b40_x50"] = m

	// Flat-horizon longrun sweep (DESIGN.md §10): one tenant streamed
	// through T ∈ {2048, 8192, 16384} under the windowed + cold-tier
	// configuration. The acceptance shape is per-batch latency flat in T
	// (the O(Δ) pipeline plus windowed drift/amplitude work make the
	// update independent of history length) and resident bytes well below
	// the full-f64 nocold control at the same T.
	longCold, err := longrunSweep(workers, []int{2048, 8192, 16384}, longrunColdHorizon)
	if err != nil {
		return err
	}
	for tp, m := range longCold {
		snap.Benchmarks[fmt.Sprintf("partial_fit_longrun_t%d", tp)] = m
	}
	longHot, err := longrunSweep(workers, []int{2048, 16384}, 0)
	if err != nil {
		return err
	}
	for tp, m := range longHot {
		snap.Benchmarks[fmt.Sprintf("partial_fit_longrun_nocold_t%d", tp)] = m
	}

	// Lock-free read-path sweep: the same streaming tenant polled by 1, 2,
	// 4 and 8 concurrent readers for a fixed window each. The reads/s and
	// read tail price the copy-on-write publication; the per-entry ingest
	// p50/p99 show the write path holding steady under query load.
	for _, rc := range []int{1, 2, 4, 8} {
		qm, err := queryThroughput(workers, blockColumns, rc, 1200*time.Millisecond)
		if err != nil {
			return err
		}
		snap.Benchmarks[fmt.Sprintf("query_throughput_sclog_r%d", rc)] = qm
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
