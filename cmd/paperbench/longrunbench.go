package main

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"imrdmd/internal/bench"
	"imrdmd/internal/core"
)

// The flat-horizon longrun configuration (DESIGN.md §10): the windowing
// knobs bound per-batch level-1 work and the cold horizon bounds resident
// history, so both should read flat as the absorbed stream length T grows.
// The probe protocol builds ONE analyzer and streams it through every
// probe point — testing.Benchmark's rebuild-per-iteration protocol would
// put an O(T) InitialFit inside the timed loop at T=16384 and drown the
// O(Δ) update this sweep exists to measure.
const (
	// 48 sensors put the level-1 rank cap at 48, and the 512-column
	// initial fit sets the grid stride to 32 — so the streaming SVD
	// saturates its rank well before the first probe point and every
	// probe measures the steady state, not the ramp where the q×q core
	// factorizations are still growing toward the cap.
	longrunSensors      = 48
	longrunInitial      = 512
	longrunBatch        = 40
	longrunWarmBatches  = 5
	longrunTimedBatches = 21
	longrunDriftWindow  = 64
	longrunAmpWindow    = 64
	longrunColdHorizon  = 512
)

// longrunSweep streams one SC Log tenant through the sorted probe points
// and records, at each: the median hand-timed per-batch PartialFit
// latency (median, not mean — the occasional re-orthogonalization spike
// is real but not the steady-state cost) and the resident history
// footprint from the analyzer's own tier accounting (deterministic, no
// GC heuristics). coldHorizon 0 runs the nocold control: same windowed
// compute, full-f64 history.
func longrunSweep(workers int, probes []int, coldHorizon int) (map[int]benchMetric, error) {
	if len(probes) == 0 {
		return nil, fmt.Errorf("longrun: no probe points")
	}
	sorted := append([]int(nil), probes...)
	sort.Ints(sorted)
	if sorted[0] < longrunInitial+longrunBatch {
		return nil, fmt.Errorf("longrun: probe %d below initial fit %d", sorted[0], longrunInitial)
	}
	// Each probe's warm+timed episode nudges the stream past the probe
	// point, and batch alignment overshoots by up to a batch per feed —
	// budget data for the worst case.
	episode := (longrunWarmBatches + longrunTimedBatches) * longrunBatch
	slack := (len(sorted) + 1) * longrunBatch
	data := bench.SCLogData(longrunSensors, sorted[len(sorted)-1]+episode+slack, 1)

	opts := core.Options{
		DT: 20, MaxLevels: 6, MaxCycles: 2, UseSVHT: true,
		Parallel: true, Workers: workers, BlockColumns: 8,
		DriftWindow: longrunDriftWindow, AmplitudeWindow: longrunAmpWindow,
		ColdHorizon: coldHorizon,
	}
	inc := core.NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, longrunInitial)); err != nil {
		return nil, err
	}

	pos := longrunInitial
	step := func() error {
		_, err := inc.PartialFit(data.ColSlice(pos, pos+longrunBatch))
		pos += longrunBatch
		return err
	}

	out := make(map[int]benchMetric, len(sorted))
	for _, probe := range sorted {
		for pos < probe {
			if err := step(); err != nil {
				return nil, err
			}
		}
		// Footprint at exactly T=probe, before the timed episode nudges
		// the stream forward.
		st := inc.MemStats()

		for i := 0; i < longrunWarmBatches; i++ {
			if err := step(); err != nil {
				return nil, err
			}
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		durs := make([]time.Duration, longrunTimedBatches)
		for i := range durs {
			t0 := time.Now()
			if err := step(); err != nil {
				return nil, err
			}
			durs[i] = time.Since(t0)
		}
		runtime.ReadMemStats(&ms1)
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })

		out[probe] = benchMetric{
			NsPerOp:       durs[len(durs)/2].Nanoseconds(),
			AllocsPerOp:   int64(ms1.Mallocs-ms0.Mallocs) / longrunTimedBatches,
			BytesPerOp:    int64(ms1.TotalAlloc-ms0.TotalAlloc) / longrunTimedBatches,
			N:             longrunTimedBatches,
			ResidentBytes: st.HotBytes + st.ColdBytes,
			RawColdCols:   st.ColdCols,
		}
	}
	return out, nil
}

// parseProbes turns the -t-long argument ("2048,4096") into probe points.
func parseProbes(s string) ([]int, error) {
	var probes []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("-t-long: %q: %w", f, err)
		}
		probes = append(probes, v)
	}
	return probes, nil
}

// runLongrunSmoke is the -t-long entry point: the cold-tier sweep over
// the requested probes, printed for CI logs (the full recorded sweep,
// including the nocold control, rides in -bench-json snapshots).
func runLongrunSmoke(workers int, arg string) error {
	probes, err := parseProbes(arg)
	if err != nil {
		return err
	}
	res, err := longrunSweep(workers, probes, longrunColdHorizon)
	if err != nil {
		return err
	}
	sort.Ints(probes)
	for _, tp := range probes {
		m := res[tp]
		fmt.Printf("longrun T=%d: %.3f ms/batch (median of %d), resident %.2f MiB (%d cold cols)\n",
			tp, float64(m.NsPerOp)/1e6, m.N, float64(m.ResidentBytes)/(1<<20), m.RawColdCols)
	}
	return nil
}
