// Command paperbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results).
//
//	paperbench -exp all -scale 0.1 -out results
//
// -scale shrinks the workload dimensions (1.0 = paper-size; the default
// 0.1 finishes in minutes on a laptop). Absolute seconds differ from the
// paper's testbed; the asserted claims are the qualitative shapes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"imrdmd/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	var (
		exp     = flag.String("exp", "all", "experiment: all | env | gpu | table1 | case1 | case2 | fig8 | fig9 | q2 | compress")
		scale   = flag.Float64("scale", 0.1, "workload scale factor (1.0 = paper size)")
		seed    = flag.Int64("seed", 1, "workload seed")
		outDir  = flag.String("out", "results", "artifact directory")
		tsne    = flag.Bool("tsne", false, "include t-SNE in fig9 (slow)")
		check   = flag.Bool("check", true, "assert the paper's qualitative shapes")
		workers = flag.Int("workers", 0, "compute-engine worker lanes for the -bench-json run (0 = GOMAXPROCS); experiment paths use the default pool")
		bjson   = flag.String("bench-json", "", "write a Mul/PartialFit benchmark snapshot (ns/op, allocs/op) to this file, e.g. BENCH_pr1.json, and exit")
		qsmoke  = flag.Bool("query-smoke", false, "run a short query-throughput smoke (2 readers, ~0.3s) and exit")
		tlong   = flag.String("t-long", "", "comma-separated stream lengths (e.g. 2048,4096): run the flat-horizon longrun sweep — per-batch latency and resident bytes at each probe — and exit")
		kinfo   = flag.Bool("kernel-info", false, "print the GEMM kernel tier, probed caches and derived blocking, and exit")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (pprof format)")
	)
	flag.Parse()
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *kinfo {
		printKernelInfo()
		return
	}
	if *qsmoke {
		m, err := queryThroughput(*workers, 8, 2, 300*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query smoke: %.0f reads/s across %d readers (read p50 %.3f ms p99 %.3f ms; concurrent ingest %.1f batches/s p50 %.3f ms p99 %.3f ms)\n",
			m.ReadsPerSec, m.Readers, m.ReadP50Ms, m.ReadP99Ms, m.BatchesPerSec, m.P50Ms, m.P99Ms)
		return
	}
	if *tlong != "" {
		if err := runLongrunSmoke(*workers, *tlong); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *bjson != "" {
		if err := writeBenchJSON(*bjson, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	failures := 0
	shape := func(name string, err error) {
		if err == nil {
			return
		}
		if *check {
			failures++
			fmt.Printf("SHAPE CHECK FAILED (%s): %v\n", name, err)
		} else {
			fmt.Printf("shape note (%s): %v\n", name, err)
		}
	}
	section := func(title string) {
		fmt.Printf("\n=== %s ===\n", title)
	}

	if want("env") {
		section("E1: environment-log update timing (§IV; paper: 80.580 s refit vs 14.728 s incremental)")
		res, err := bench.RunUpdateTiming("env", *scale, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P=%d T=%d +%d points (scale %.2f)\n", res.P, res.T, res.Added, *scale)
		fmt.Printf("incremental update: %.3f s\nfull recomputation: %.3f s\nspeedup: %.2f×\n",
			res.Incremental, res.Refit, res.Speedup)
		if res.Incremental >= 0.75*res.Refit {
			shape("env", fmt.Errorf("incremental %.3fs not well below refit %.3fs", res.Incremental, res.Refit))
		}
	}

	if want("gpu") {
		section("E2: GPU-metrics update timing (§IV; paper: 59.263 s refit vs 29.945 s incremental)")
		res, err := bench.RunUpdateTiming("gpu", *scale, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P=%d T=%d +%d points (scale %.2f)\n", res.P, res.T, res.Added, *scale)
		fmt.Printf("incremental update: %.3f s\nfull recomputation: %.3f s\nspeedup: %.2f×\n",
			res.Incremental, res.Refit, res.Speedup)
		if res.Incremental >= 0.75*res.Refit {
			shape("gpu", fmt.Errorf("incremental %.3fs not well below refit %.3fs", res.Incremental, res.Refit))
		}
	}

	if want("table1") {
		section("E3: Table I — initial vs partial fit")
		rows, err := bench.RunTable1(bench.Table1Config{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		table := bench.FormatTable1(rows)
		fmt.Print(table)
		writeArtifact(*outDir, "table1.txt", table)
		shape("table1", bench.CheckTable1Shape(rows))
	}

	if want("case1") {
		section("E4–E6: case study 1 (Figs. 3, 4, 5; paper: ‖err‖_F=3958.58, 12.49 s + 7.6 s)")
		nodes, steps := scaledDim(871, *scale), scaledDim(2000, *scale)
		res, err := bench.RunCaseStudy1(nodes, steps, *seed, *outDir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("nodes=%d steps=%d\ninitial fit %.3f s, incremental update %.3f s\n",
			res.Nodes, res.Steps, res.InitialSecs, res.UpdateSecs)
		fmt.Printf("‖actual − recon‖_F = %.2f (relative %.2f%%; paper 3958.58 ≈ 5%% at paper scale)\n",
			res.FrobError, 100*res.RelError)
		fmt.Printf("z-scores: %d cold, %d near, %d warm, %d hot\n",
			res.ZSummary.NumCold, res.ZSummary.NumNear, res.ZSummary.NumWarm, res.ZSummary.NumHot)
		fmt.Printf("memory-error nodes near/below baseline: %d of %d (paper: all)\n",
			res.MemErrNearOrCold, len(res.MemErrNodes))
		listArtifacts(res.Artifacts)
		if res.RelError > 0.15 {
			shape("case1", fmt.Errorf("relative reconstruction error %.1f%% too large", 100*res.RelError))
		}
	}

	if want("case2") {
		section("E7–E8: case study 2 (Figs. 6, 7; paper: ‖err‖_F=3423.85)")
		nodes, steps := scaledDim(4392, *scale), scaledDim(1440, *scale)
		res, err := bench.RunCaseStudy2(nodes, steps, *seed, *outDir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("nodes=%d steps/window=%d\n", res.Nodes, res.StepsPerWindow)
		fmt.Printf("window 1 (hot):  ‖err‖_F = %.2f, mean level %.1f °C\n", res.FrobError[0], res.HotWindowMeanLevel)
		fmt.Printf("window 2 (cool): ‖err‖_F = %.2f, mean level %.1f °C\n", res.FrobError[1], res.CoolWindowMeanLevel)
		fmt.Printf("persistent machine-check nodes: %v (paper: persistent nodes need attention)\n", res.Persistent)
		listArtifacts(res.Artifacts)
		if res.HotWindowMeanLevel <= res.CoolWindowMeanLevel {
			shape("case2", fmt.Errorf("hot window mean %.1f not above cool window %.1f",
				res.HotWindowMeanLevel, res.CoolWindowMeanLevel))
		}
		if len(res.Persistent) == 0 {
			shape("case2", fmt.Errorf("no persistent hardware-error node detected"))
		}
	}

	if want("fig8") {
		section("E9: Fig. 8 — method comparison on baseline vs non-baseline readings")
		steps := scaledDim(1000, *scale*4) // fig8 is small; keep enough steps
		res, err := bench.RunFig8(steps, *seed, *outDir)
		if err != nil {
			log.Fatal(err)
		}
		table := bench.FormatFig8(res)
		fmt.Print(table)
		writeArtifact(*outDir, "fig8_separation.txt", table)
		listArtifacts(res.Artifacts)
		// Paper: mrDMD-family z-scores separate; embeddings micro-cluster.
		if res.Separation["mrDMD"] <= 0 || res.Separation["I-mrDMD"] <= 0 {
			shape("fig8", fmt.Errorf("mrDMD-family separation not positive: %+.3f / %+.3f",
				res.Separation["mrDMD"], res.Separation["I-mrDMD"]))
		}
	}

	if want("fig9") {
		section("E10: Fig. 9 — completion time vs data size")
		rows, err := bench.RunFig9(bench.Fig9Config{Scale: *scale, Seed: *seed, WithTSNE: *tsne})
		if err != nil {
			log.Fatal(err)
		}
		table := bench.FormatFig9(rows)
		fmt.Print(table)
		writeArtifact(*outDir, "fig9_timing.txt", table)
		if path, err := bench.WriteFig9Plot(rows, *outDir); err == nil {
			listArtifacts([]string{path})
		}
		shape("fig9", bench.CheckFig9Shape(rows))
	}

	if want("q2") {
		section("E12–E13: Q2 — online vs batch accuracy, and drift-triggered recomputation")
		res, err := bench.RunQ2(scaledDim(256, *scale*4), scaledDim(4096, *scale*4), 4, *seed)
		if err != nil {
			log.Fatal(err)
		}
		table := bench.FormatQ2(res)
		fmt.Print(table)
		writeArtifact(*outDir, "q2_accuracy.txt", table)
		shape("q2", bench.CheckQ2Shape(res))
	}

	if want("compress") {
		section("E14: compression sweep (§I terabytes-to-megabytes; §VI future-work evaluation)")
		rows, err := bench.RunCompression(scaledDim(2560, *scale), scaledDim(40960, *scale), *seed)
		if err != nil {
			log.Fatal(err)
		}
		table := bench.FormatCompression(rows)
		fmt.Print(table)
		writeArtifact(*outDir, "compression.txt", table)
		shape("compress", bench.CheckCompressionShape(rows))
	}

	if failures > 0 {
		log.Fatalf("%d shape check(s) failed", failures)
	}
	fmt.Println("\nall requested experiments completed")
}

func scaledDim(v int, scale float64) int {
	s := int(float64(v) * scale)
	if s < 16 {
		s = 16
	}
	return s
}

func writeArtifact(dir, name, content string) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Println("wrote", path)
}

func listArtifacts(paths []string) {
	if len(paths) == 0 {
		return
	}
	fmt.Println("wrote", strings.Join(paths, ", "))
}
