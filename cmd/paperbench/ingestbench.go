package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"imrdmd/internal/bench"
	"imrdmd/internal/server"
	"imrdmd/internal/stream"
)

// ingestThroughput measures the streaming service end to end: an SC Log
// tenant is seeded with 2000 columns over CSV, then 50 consecutive
// 40-column JSON batches stream in over real HTTP. Each batch is one
// PartialFit; the recorded distribution therefore includes the periodic
// re-orthogonalization spikes, which is why p99 is reported next to p50.
func ingestThroughput(workers, blockColumns int) (benchMetric, error) {
	const (
		p       = 200
		seedT   = 2000
		batchW  = 40
		batches = 50
	)
	data := bench.SCLogData(p, seedT+batches*batchW, 1)

	s := server.New(server.Config{Workers: workers})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	do := func(method, path, ct string, body []byte, want int) error {
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			return fmt.Errorf("%s %s: status %d (%s)", method, path, resp.StatusCode, out)
		}
		return nil
	}

	opts := fmt.Sprintf(`{"dt":20,"max_levels":6,"max_cycles":2,"use_svht":true,"parallel":true,"block_columns":%d,"initial_cols":%d}`,
		blockColumns, seedT)
	if err := do("POST", "/v1/tenants/bench", "application/json", []byte(opts), http.StatusCreated); err != nil {
		return benchMetric{}, err
	}
	var seed bytes.Buffer
	if err := stream.WriteCSV(&seed, data.ColSlice(0, seedT)); err != nil {
		return benchMetric{}, err
	}
	if err := do("POST", "/v1/tenants/bench/ingest", "text/csv", seed.Bytes(), http.StatusOK); err != nil {
		return benchMetric{}, err
	}

	jsonBatch := func(lo, hi int) ([]byte, error) {
		sl := data.ColSlice(lo, hi)
		rows := make([][]float64, sl.R)
		for i := range rows {
			rows[i] = sl.Row(i)
		}
		return json.Marshal(stream.JSONBatch{Data: rows})
	}
	lat := make([]time.Duration, 0, batches)
	start := time.Now()
	for b := 0; b < batches; b++ {
		body, err := jsonBatch(seedT+b*batchW, seedT+(b+1)*batchW)
		if err != nil {
			return benchMetric{}, err
		}
		t0 := time.Now()
		if err := do("POST", "/v1/tenants/bench/ingest", "application/json", body, http.StatusOK); err != nil {
			return benchMetric{}, err
		}
		lat = append(lat, time.Since(t0))
	}
	wall := time.Since(start)

	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	return benchMetric{
		NsPerOp:       int64(total) / int64(len(lat)),
		N:             batches,
		BatchesPerSec: float64(batches) / wall.Seconds(),
		P50Ms:         float64(stream.Quantile(sorted, 0.50)) / float64(time.Millisecond),
		P99Ms:         float64(stream.Quantile(sorted, 0.99)) / float64(time.Millisecond),
	}, nil
}
