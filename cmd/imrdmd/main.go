// Command imrdmd runs the I-mrDMD pipeline on a sensor CSV (one row per
// sensor, as produced by loggen): initial fit on the first -initial
// columns, streamed partial fits in -batch column blocks, then writes the
// reconstruction, spectrum and baseline z-scores.
//
// Example:
//
//	imrdmd -in data/env.csv -dt 20 -levels 6 -initial 1000 -batch 500 -out results
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"imrdmd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imrdmd: ")
	var (
		in        = flag.String("in", "", "input sensor CSV (required)")
		dt        = flag.Float64("dt", 1, "sampling interval (seconds)")
		levels    = flag.Int("levels", 6, "max mrDMD levels")
		cycles    = flag.Int("cycles", 2, "max slow-mode cycles per window")
		svht      = flag.Bool("svht", true, "use SVHT rank truncation")
		rank      = flag.Int("rank", 0, "fixed SVD rank (0 = automatic)")
		initial   = flag.Int("initial", 0, "initial-fit columns (0 = half the data)")
		batch     = flag.Int("batch", 0, "partial-fit batch columns (0 = no streaming)")
		baseLo    = flag.Float64("baseline-lo", 46, "baseline mean lower bound")
		baseHi    = flag.Float64("baseline-hi", 57, "baseline mean upper bound")
		workers   = flag.Int("workers", 0, "compute-engine worker lanes (0 = GOMAXPROCS)")
		blkCols   = flag.Int("block-columns", 8, "incremental-SVD block-column width (1 = column at a time, 0 = one block per batch)")
		precision = flag.String("precision", "float64", `arithmetic tier: "float64" or "mixed"`)
		shards    = flag.Int("shards", 1, "row-shard count for the streaming level-1 SVD (1 = unsharded)")
		driftWin  = flag.Int("drift-window", 0, "trailing slow-grid columns compared for drift (0 = full grid, bit-stable)")
		ampWin    = flag.Int("amp-window", 0, "trailing slow-grid columns used by the level-1 amplitude refit (0 = full width)")
		coldHzn   = flag.Int("cold-horizon", 0, "columns kept in float64; older history demotes to float32 (0 = never demote)")
		outDir    = flag.String("out", ".", "output directory")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, `Usage: imrdmd -in data.csv [options]

Runs the I-mrDMD pipeline on a sensor CSV (one row per sensor, as
produced by loggen): initial fit on the first -initial columns, streamed
partial fits in -batch column blocks, then writes the reconstruction,
spectrum and baseline z-scores to -out.

Performance knobs and how they interact:

  -workers N         Sizes the long-lived compute-engine pool that every
                     kernel, sibling-window recursion and async recompute
                     runs on (0 = GOMAXPROCS). One pool serves the whole
                     run; it bounds total goroutine fan-out.
  -block-columns W   Chunks the streaming level-1 SVD's absorption of new
                     samples: each chunk of W columns pays one residual QR
                     plus one small core SVD, so larger W amortizes
                     factorizations across a -batch. 1 = column at a time,
                     0 = whole batch as one block. Any W yields the same
                     subspace up to rank truncation; it trades per-batch
                     latency against factorization count, and each chunk
                     still parallelizes across -workers lanes.
  -precision TIER    "float64" (default) keeps every stage in float64 and
                     is bit-stable run to run. "mixed" screens each
                     subtree window in float32 — half the memory traffic,
                     twice the SIMD width on the same -workers lanes — and
                     recomputes only the SVHT-kept directions in float64;
                     kept-mode sets match float64 within SVHT tolerance.
                     The streaming level-1 SVD (the part -block-columns
                     chunks) keeps float64 arithmetic, so -precision and
                     -block-columns compose independently (with -shards
                     above 1, see below).
  -shards S          Row-partitions the streaming level-1 SVD across S
                     shards: each shard owns a slice of the sensor rows
                     while the small Σ/V factors replicate, and every
                     partial-fit update costs one q×w projection
                     all-reduce between shards — the in-process form of
                     the multi-node layout. 1 (default) is the unsharded
                     path, bit-stable with prior releases; S > 1 must not
                     exceed the sensor count and reproduces the unsharded
                     results to 1e-8. Composes with -block-columns (each
                     chunk is one collective) and with -precision mixed,
                     where collectives ship float32 — half the bytes, and
                     agreement with the unsharded mixed run loosens to
                     screening accuracy (2e-5). Shard work fans out over
                     the same -workers lanes.
  -drift-window K    Compares only the trailing K slow-grid columns when
                     measuring per-update level-1 drift, so the drift
                     check costs O(K) instead of O(T/stride) per batch.
                     0 (default) compares the full grid and is bit-stable
                     with prior releases.
  -amp-window W      Fits level-1 mode amplitudes against the trailing W
                     slow-grid columns instead of the whole grid. Modes
                     whose envelope has decayed below 5%% of the dominant
                     mode's inside the window are reported absent rather
                     than noise-amplified. 0 (default) = full width,
                     bit-stable.
  -cold-horizon H    Demotes raw history older than H columns from
                     float64 to float32 chunks — roughly halving resident
                     bytes per long-running stream. The streaming SVD and
                     new-window fits only ever read columns younger than
                     the horizon, so the spectrum is bit-identical; only
                     raw-history reads and the reconstruction error see
                     f32 rounding on cold columns. 0 (default) keeps
                     everything in float64.

Options:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	series, err := imrdmd.ReadSeriesCSV(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	p, t := series.Sensors(), series.Steps()
	fmt.Printf("loaded %d sensors × %d steps\n", p, t)

	init := *initial
	if init <= 0 || init > t {
		init = t
		if *batch > 0 {
			init = t / 2
		}
	}

	a, err := imrdmd.New(imrdmd.Options{
		DT: *dt, MaxLevels: *levels, MaxCycles: *cycles,
		UseSVHT: *svht, Rank: *rank, Parallel: true, Workers: *workers,
		BlockColumns: *blkCols, Precision: *precision, Shards: *shards,
		DriftWindow: *driftWin, AmplitudeWindow: *ampWin, ColdHorizon: *coldHzn,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := a.InitialFit(series.Slice(0, init)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial fit on %d steps: %v\n", init, time.Since(start).Round(time.Millisecond))

	if *batch > 0 {
		for pos := init; pos < t; {
			hi := pos + *batch
			if hi > t {
				hi = t
			}
			t0 := time.Now()
			stats, err := a.PartialFit(series.Slice(pos, hi))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("partial fit [%d,%d): %v (drift %.4g)\n",
				pos, hi, time.Since(t0).Round(time.Millisecond), stats.Drift)
			pos = hi
		}
	}
	fmt.Printf("modes=%d levels=%d reconstruction ‖err‖_F=%.4g\n",
		a.NumModes(), a.Levels(), a.ReconstructionError())

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println("wrote", path)
	}
	write("recon.csv", func(f *os.File) error { return a.Reconstruction().WriteCSV(f) })
	write("spectrum.csv", func(f *os.File) error {
		w := csv.NewWriter(f)
		if err := w.Write([]string{"freq_hz", "power", "amplitude", "growth", "level"}); err != nil {
			return err
		}
		for _, pt := range a.Spectrum() {
			rec := []string{
				strconv.FormatFloat(pt.Freq, 'g', -1, 64),
				strconv.FormatFloat(pt.Power, 'g', -1, 64),
				strconv.FormatFloat(pt.Amp, 'g', -1, 64),
				strconv.FormatFloat(pt.Grow, 'g', -1, 64),
				strconv.Itoa(pt.Level),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	})

	base := imrdmd.BaselineByMeanRange(series, *baseLo, *baseHi)
	if len(base) >= 2 {
		z, err := a.ZScores(base, 0, math.Inf(1))
		if err != nil {
			log.Fatal(err)
		}
		write("zscores.csv", func(f *os.File) error {
			w := csv.NewWriter(f)
			if err := w.Write([]string{"sensor", "zscore", "class"}); err != nil {
				return err
			}
			for i, v := range z {
				rec := []string{strconv.Itoa(i), strconv.FormatFloat(v, 'g', -1, 64), imrdmd.ClassifyZ(v)}
				if err := w.Write(rec); err != nil {
					return err
				}
			}
			w.Flush()
			return w.Error()
		})
		fmt.Printf("baseline sensors: %d of %d (mean in [%.0f, %.0f])\n", len(base), p, *baseLo, *baseHi)
	} else {
		fmt.Println("baseline selection empty; skipping z-scores (adjust -baseline-lo/-baseline-hi)")
	}
}
