// Command rackview renders a rack-layout SVG from the paper's layout DSL
// and a z-score CSV (as written by cmd/imrdmd).
//
// Example:
//
//	rackview -layout "xc40 1 2 row0-1:0-10 2 c:0-7 1 s:0-7 1 b:0 n:0" \
//	         -values results/zscores.csv -out rack.svg
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"

	"imrdmd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rackview: ")
	var (
		layout  = flag.String("layout", "", "layout spec string (required)")
		values  = flag.String("values", "", "z-score CSV: sensor,zscore[,class] (required)")
		title   = flag.String("title", "rack view", "figure title")
		outPath = flag.String("out", "rack.svg", "output SVG path")
		outline = flag.String("outline", "", "comma-separated node indices to outline (hardware errors)")
	)
	flag.Parse()
	if *layout == "" || *values == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*values)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := csv.NewReader(f).ReadAll()
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	var z []float64
	for i, rec := range rows {
		if i == 0 && len(rec) > 0 && rec[0] == "sensor" {
			continue
		}
		if len(rec) < 2 {
			log.Fatalf("row %d: want at least sensor,zscore", i)
		}
		idx, err := strconv.Atoi(rec[0])
		if err != nil {
			log.Fatalf("row %d sensor: %v", i, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			log.Fatalf("row %d zscore: %v", i, err)
		}
		for len(z) <= idx {
			z = append(z, math.NaN())
		}
		z[idx] = v
	}

	var outlined []int
	if *outline != "" {
		for _, s := range strings.Split(*outline, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("-outline: %v", err)
			}
			outlined = append(outlined, n)
		}
	}

	out, err := os.Create(*outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := imrdmd.RackView(out, *layout, *title, z, outlined, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", *outPath)
}
