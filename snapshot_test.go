package imrdmd

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// snapshotSeries synthesizes a deterministic multi-scale signal (the
// quickstart shape) wide enough to stream in several partial fits.
func snapshotSeries(p, t int) *Series {
	rng := rand.New(rand.NewSource(17))
	s := NewSeries(p, t)
	for i := 0; i < p; i++ {
		phase := float64(i) * 0.37
		row := s.m.Row(i)
		for k := 0; k < t; k++ {
			x := float64(k)
			row[k] = 50 + 6*math.Sin(x/200+phase) + 2*math.Sin(x/13+phase) + 0.3*rng.NormFloat64()
		}
	}
	return s
}

// slice returns columns [lo, hi) as a Series.
func (s *Series) slice(lo, hi int) *Series {
	return &Series{m: s.m.ColSlice(lo, hi)}
}

// TestPublicSnapshotRestore: the public Snapshot/Restore round trip must
// continue streaming exactly like the uninterrupted analyzer.
func TestPublicSnapshotRestore(t *testing.T) {
	data := snapshotSeries(24, 1024)
	opts := Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true, BlockColumns: 8}

	ref, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.InitialFit(data.slice(0, 512)); err != nil {
		t.Fatal(err)
	}
	interrupted, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := interrupted.InitialFit(data.slice(0, 512)); err != nil {
		t.Fatal(err)
	}
	for c := 512; c < 768; c += 64 {
		for _, a := range []*Analyzer{ref, interrupted} {
			if _, err := a.PartialFit(data.slice(c, c+64)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var buf bytes.Buffer
	if err := interrupted.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != ref.Steps() {
		t.Fatalf("restored Steps = %d want %d", restored.Steps(), ref.Steps())
	}
	// Restored options come back default-filled (DT, windows, precision
	// and shard knobs resolved); every knob that was set must survive.
	ro := restored.opts
	if ro.DT != 1 || ro.MaxLevels != 4 || ro.MaxCycles != 2 || !ro.UseSVHT ||
		ro.BlockColumns != 8 || ro.Precision != PrecisionFloat64 || ro.Shards != 1 {
		t.Fatalf("restored options lost knobs: %+v", ro)
	}

	for c := 768; c < 1024; c += 64 {
		for _, a := range []*Analyzer{ref, restored} {
			if _, err := a.PartialFit(data.slice(c, c+64)); err != nil {
				t.Fatal(err)
			}
		}
	}
	gs, ws := restored.Spectrum(), ref.Spectrum()
	if len(gs) != len(ws) {
		t.Fatalf("spectrum %d points vs %d", len(gs), len(ws))
	}
	for i := range ws {
		if gs[i] != ws[i] {
			t.Fatalf("spectrum point %d: %+v vs %+v", i, gs[i], ws[i])
		}
	}
	ge, we := restored.ReconstructionError(), ref.ReconstructionError()
	if math.Abs(ge-we) > 1e-12*(1+we) {
		t.Fatalf("reconstruction error %v vs %v", ge, we)
	}
}

// TestPublicRestoreErrors: garbage input must fail with the imrdmd error
// prefix, never panic.
func TestPublicRestoreErrors(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("definitely not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Restore(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	a, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err == nil {
		t.Fatal("snapshot of unfitted analyzer accepted")
	}
}
