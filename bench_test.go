// Package-level benchmarks: one testing.B per table/figure of the paper,
// at benchmark-friendly scale. cmd/paperbench runs the same experiments
// with the paper's row/series output and shape checks; these benches make
// the costs visible to `go test -bench`.
package imrdmd

import (
	"testing"

	"imrdmd/internal/bench"
	"imrdmd/internal/core"
	"imrdmd/internal/embed"
)

// —— Table I (E3): initial fit vs incremental addition ——————————————————

func BenchmarkTable1SCLogInitialT2000(b *testing.B) {
	data := bench.SCLogData(200, 2000, 1)
	opts := core.Options{DT: 20, MaxLevels: 6, MaxCycles: 2, UseSVHT: true, Parallel: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := core.NewIncremental(opts)
		if err := inc.InitialFit(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1SCLogPartialT2000(b *testing.B) {
	data := bench.SCLogData(200, 2200, 1)
	opts := core.Options{DT: 20, MaxLevels: 6, MaxCycles: 2, UseSVHT: true, Parallel: true}
	inc := core.NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, 2000)); err != nil {
		b.Fatal(err)
	}
	blk := data.ColSlice(2000, 2200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inc.PartialFit(blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1GPUInitialT2000(b *testing.B) {
	data := bench.GPUData(200, 2000, 1)
	opts := core.Options{DT: 3, MaxLevels: 7, MaxCycles: 2, UseSVHT: true, Parallel: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := core.NewIncremental(opts)
		if err := inc.InitialFit(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1GPUPartialT2000(b *testing.B) {
	data := bench.GPUData(200, 2200, 1)
	opts := core.Options{DT: 3, MaxLevels: 7, MaxCycles: 2, UseSVHT: true, Parallel: true}
	inc := core.NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, 2000)); err != nil {
		b.Fatal(err)
	}
	blk := data.ColSlice(2000, 2200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inc.PartialFit(blk); err != nil {
			b.Fatal(err)
		}
	}
}

// —— §IV streaming updates (E1/E2): incremental vs refit ————————————————

func BenchmarkEnvLogIncrementalUpdate(b *testing.B) {
	data := bench.SCLogData(400, 4400, 1)
	opts := core.Options{DT: 20, MaxLevels: 8, MaxCycles: 2, UseSVHT: true, Parallel: true}
	inc := core.NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, 4000)); err != nil {
		b.Fatal(err)
	}
	blk := data.ColSlice(4000, 4400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inc.PartialFit(blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvLogFullRefit(b *testing.B) {
	data := bench.SCLogData(400, 4400, 1)
	opts := core.Options{DT: 20, MaxLevels: 8, MaxCycles: 2, UseSVHT: true, Parallel: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decompose(data, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPUIncrementalUpdate(b *testing.B) {
	data := bench.GPUData(400, 2200, 1)
	opts := core.Options{DT: 3, MaxLevels: 9, MaxCycles: 2, UseSVHT: true, Parallel: true}
	inc := core.NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, 2000)); err != nil {
		b.Fatal(err)
	}
	blk := data.ColSlice(2000, 2200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inc.PartialFit(blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGPUFullRefit(b *testing.B) {
	data := bench.GPUData(400, 2200, 1)
	opts := core.Options{DT: 3, MaxLevels: 9, MaxCycles: 2, UseSVHT: true, Parallel: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decompose(data, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// —— Fig. 9 (E10): per-method completion time at 1000×1000-scale ————————

func BenchmarkFig9PCA(b *testing.B) {
	data := bench.SCLogData(500, 1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&embed.PCA{Components: 2}).FitTransform(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9IPCAPartial(b *testing.B) {
	data := bench.SCLogData(500, 1100, 1)
	ip := &embed.IPCA{Components: 2, BatchSize: 100}
	if err := ip.PartialFit(data.ColSlice(0, 1000).T()); err != nil {
		b.Fatal(err)
	}
	blk := data.ColSlice(1000, 1100).T()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ip.PartialFit(blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9UMAP(b *testing.B) {
	data := bench.SCLogData(300, 500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := &embed.UMAP{NNeighbors: 15, Epochs: 50, Seed: 1}
		if _, err := u.FitTransform(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9MrDMD(b *testing.B) {
	data := bench.SCLogData(500, 1000, 1)
	opts := core.Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true, Parallel: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decompose(data, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9IMrDMDPartial(b *testing.B) {
	data := bench.SCLogData(500, 1100, 1)
	opts := core.Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true, Parallel: true}
	inc := core.NewIncremental(opts)
	if err := inc.InitialFit(data.ColSlice(0, 1000)); err != nil {
		b.Fatal(err)
	}
	blk := data.ColSlice(1000, 1100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inc.PartialFit(blk); err != nil {
			b.Fatal(err)
		}
	}
}

// —— Ablations (DESIGN.md §4) ————————————————————————————————————————————

func BenchmarkAblationMaxCycles(b *testing.B) {
	data := bench.SCLogData(200, 1024, 1)
	for _, mc := range []int{1, 2, 4, 8} {
		b.Run(benchName("maxCycles", mc), func(b *testing.B) {
			opts := core.Options{DT: 20, MaxLevels: 5, MaxCycles: mc, UseSVHT: true, Parallel: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Decompose(data, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationSampling(b *testing.B) {
	data := bench.SCLogData(200, 1024, 1)
	for _, nf := range []int{1, 4, 16} {
		b.Run(benchName("nyquistFactor", nf), func(b *testing.B) {
			opts := core.Options{DT: 20, MaxLevels: 5, MaxCycles: 2, NyquistFactor: nf, UseSVHT: true, Parallel: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Decompose(data, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationRank(b *testing.B) {
	data := bench.SCLogData(200, 1024, 1)
	cases := []struct {
		name string
		opts core.Options
	}{
		{"svht", core.Options{DT: 20, MaxLevels: 5, MaxCycles: 2, UseSVHT: true, Parallel: true}},
		{"rank4", core.Options{DT: 20, MaxLevels: 5, MaxCycles: 2, Rank: 4, Parallel: true}},
		{"rank16", core.Options{DT: 20, MaxLevels: 5, MaxCycles: 2, Rank: 16, Parallel: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Decompose(data, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationParallel(b *testing.B) {
	data := bench.SCLogData(400, 2048, 1)
	for _, par := range []bool{false, true} {
		name := "serial"
		if par {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{DT: 20, MaxLevels: 6, MaxCycles: 2, UseSVHT: true, Parallel: par}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Decompose(data, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
