package imrdmd

import (
	"fmt"
	"io"
	"math"
	"strings"

	"imrdmd/internal/baseline"
	"imrdmd/internal/core"
	"imrdmd/internal/rack"
	"imrdmd/internal/viz"
)

// Precision values for Options.Precision.
const (
	// PrecisionFloat64 runs every numeric stage in float64 — the default,
	// bit-stable tier.
	PrecisionFloat64 = core.PrecisionFloat64
	// PrecisionMixed screens each subtree window in float32 and recomputes
	// only the SVHT-kept directions in float64: the paper's multifidelity
	// principle applied to arithmetic precision. Kept-mode sets match
	// float64 within SVHT tolerance; results are not bit-identical.
	PrecisionMixed = core.PrecisionMixed
)

// Options configures an Analyzer. The zero value gets sensible defaults
// (DT=1, MaxLevels=6, MaxCycles=2, 4× Nyquist sampling).
type Options struct {
	// DT is the sampling interval between columns (any consistent time
	// unit; output frequencies are cycles per that unit).
	DT float64
	// MaxLevels bounds the multiresolution recursion depth.
	MaxLevels int
	// MaxCycles is the slow-mode threshold per window (paper default 2).
	MaxCycles int
	// NyquistFactor oversamples each window relative to Nyquist (paper
	// uses 4).
	NyquistFactor int
	// Rank fixes the SVD truncation rank; 0 defers to SVHT.
	Rank int
	// UseSVHT enables Gavish–Donoho optimal hard thresholding
	// (do_svht=True in the paper's Fig. 9 configuration).
	UseSVHT bool
	// MinWindow stops recursion below this many columns.
	MinWindow int
	// Parallel decomposes sibling windows concurrently on the analyzer's
	// compute engine.
	Parallel bool
	// Workers sizes the analyzer's compute-engine worker pool — matrix
	// kernels, sibling-window recursion and asynchronous recomputations
	// all run on one long-lived pool of Workers−1 goroutines, with each
	// calling goroutine contributing its own lane. 0 uses a
	// GOMAXPROCS-sized pool. The pool is process-wide per Workers value:
	// analyzers configured with the same count share the same pool
	// workers (each concurrent caller still adds its one inline lane,
	// and async recomputes drain on a per-analyzer lane). Each distinct
	// Workers value pins one permanent pool for the process lifetime, so
	// prefer a few fixed sizes over per-request values. See DESIGN.md §2.
	Workers int
	// BlockColumns chunks the incremental level-1 SVD's absorption of
	// newly sampled columns: each chunk of BlockColumns columns costs one
	// residual QR plus one small core SVD, so larger blocks amortize the
	// factorization cost of sustained streams (1 = column at a time;
	// 8 is a good streaming default). 0 keeps the pre-knob behavior of
	// absorbing each PartialFit's samples as one block. Any setting
	// yields the same subspace up to rank truncation — reconstruction
	// error is test-pinned to match within 1e-8. See DESIGN.md §5.
	BlockColumns int
	// Precision selects the arithmetic tier: "" or PrecisionFloat64
	// (default) keeps every numeric stage in float64, bit-stable with
	// prior releases. PrecisionMixed screens each window's SVD in the
	// float32 tier (half the memory traffic, twice the SIMD width) and
	// recomputes only the directions the SVHT decision keeps in float64;
	// the streaming level-1 SVD stays float64 except that with Shards > 1
	// its reduce payloads ship as float32 (see Shards). Kept-mode sets are
	// test-pinned to match float64 on the paper workloads; the decisions
	// can diverge only when the decision-relevant spectrum sits below
	// float32 visibility (~1e-6 of the window's largest singular value).
	// See DESIGN.md §6 for when mixed mode is safe.
	Precision string
	// Shards row-partitions the streaming level-1 decomposition across
	// this many shards: each shard owns a contiguous slice of the sensor
	// rows while the small Σ/V factors replicate, and each PartialFit
	// update costs exactly one q×w projection all-reduce between the
	// shards — the in-process form of the multi-node scale-out (the
	// transport seam is internal/shard's Reducer). 0 or 1 (the default)
	// keeps the unsharded path, bit-identical to prior releases; counts
	// above 1 must not exceed the sensor count (checked at InitialFit)
	// and reproduce the unsharded decomposition to summation roundoff
	// (test-pinned at 1e-8 on the paper workloads). Under PrecisionMixed
	// the collective ships float32 payloads — half the bytes — and the
	// agreement with the unsharded mixed run loosens to screening
	// accuracy (test-pinned at 2e-5). See DESIGN.md §7.
	Shards int
	// DriftWindow bounds the drift measurement — the per-update comparison
	// of old versus new level-1 slow reconstructions — to the trailing
	// DriftWindow level-1 grid columns, making that stage O(window) instead
	// of O(absorbed history). 0 (the default) measures over the full grid,
	// bit-identical to prior releases. Pairs naturally with DriftThreshold:
	// a bounded window reacts to recent change rather than diluting it
	// across the whole timeline. See DESIGN.md §10.
	DriftWindow int
	// AmplitudeWindow bounds the level-1 amplitude refit (the Jovanović
	// least-squares fit re-run every PartialFit) to the trailing
	// AmplitudeWindow level-1 grid columns. Amplitudes stay referenced to
	// t=0; modes that decayed away before the window opens are reported
	// with amplitude 0 (the window carries no information about them).
	// 0 (the default) fits over the full grid, bit-identical to prior
	// releases. See DESIGN.md §10 for the agreement tolerances.
	AmplitudeWindow int
	// ColdHorizon, when positive, demotes absorbed raw columns older than
	// this many steps from float64 to float32 chunk storage — roughly
	// halving resident history bytes for long streams. The trailing
	// ColdHorizon columns (and everything the update pipeline fits
	// against) stay exact f64; only full-resolution raw reads (Raw,
	// ReconstructionError, snapshots) observe the ≤2⁻²⁴ relative rounding
	// on cold columns. 0 (the default) keeps all history in float64.
	// See DESIGN.md §10.
	ColdHorizon int

	// DriftThreshold, when positive, recomputes previously fitted levels
	// when the level-1 slow-mode drift exceeds it (Algorithm 1's
	// user-defined threshold).
	DriftThreshold float64
	// AsyncRecompute runs those recomputations asynchronously.
	AsyncRecompute bool
}

func (o Options) toCore() core.Options {
	return core.Options{
		DT:              o.DT,
		MaxLevels:       o.MaxLevels,
		MaxCycles:       o.MaxCycles,
		NyquistFactor:   o.NyquistFactor,
		Rank:            o.Rank,
		UseSVHT:         o.UseSVHT,
		MinWindow:       o.MinWindow,
		Parallel:        o.Parallel,
		Workers:         o.Workers,
		BlockColumns:    o.BlockColumns,
		Precision:       o.Precision,
		Shards:          o.Shards,
		DriftWindow:     o.DriftWindow,
		AmplitudeWindow: o.AmplitudeWindow,
		ColdHorizon:     o.ColdHorizon,
	}
}

// Validate rejects option values that would otherwise be accepted
// silently and misbehave later (negative Workers or BlockColumns,
// unknown Precision). The zero value of every field is valid; defaults
// are filled at fit time. The rules live in core.Options.Validate —
// this wrapper only re-homes the error prefix.
func (o Options) Validate() error {
	if err := o.toCore().Validate(); err != nil {
		return fmt.Errorf("imrdmd: %s", strings.TrimPrefix(err.Error(), "core: "))
	}
	return nil
}

// UpdateStats reports one PartialFit (see core.UpdateStats).
type UpdateStats struct {
	// Drift is the Frobenius norm of the level-1 slow-mode change over
	// the previously fitted window.
	Drift float64
	// Recomputed reports whether older levels were recomputed.
	Recomputed bool
	// NewColumns is the number of absorbed time steps.
	NewColumns int
}

// SpectrumPoint is one mode in the mrDMD power spectrum: frequency
// (Eq. 9), power ‖φ‖² (Eq. 10), amplitude |b|, growth rate Re ψ, and the
// tree level the mode came from.
type SpectrumPoint struct {
	Freq  float64
	Power float64
	Amp   float64
	Grow  float64
	Level int
}

// Analyzer is the public I-mrDMD pipeline: initial fit, streamed partial
// fits, reconstruction, spectrum and baseline z-scores.
type Analyzer struct {
	opts Options
	inc  *core.Incremental
}

// New creates an Analyzer. It returns a descriptive error when opts holds
// an invalid knob (negative Workers or BlockColumns, unknown Precision)
// instead of silently accepting it.
func New(opts Options) (*Analyzer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	inc := core.NewIncremental(opts.toCore())
	inc.DriftThreshold = opts.DriftThreshold
	inc.AsyncRecompute = opts.AsyncRecompute
	return &Analyzer{opts: opts, inc: inc}, nil
}

// Snapshot serializes the analyzer's complete incremental state — the
// absorbed history, the multi-level window tree, the running level-1 SVD
// (sharded or not) and every option and counter that shapes future
// updates — as a versioned binary stream. A Restore of that stream
// continues PartialFit streams bit-compatibly with the uninterrupted
// analyzer, which is what lets a long-running deployment survive process
// restarts or migrate tenants between hosts (cmd/imrdmd-serve exposes
// exactly this over HTTP). Snapshot waits for pending asynchronous
// recomputations, then holds the analyzer lock for the write; it is an
// error before InitialFit.
func (a *Analyzer) Snapshot(w io.Writer) error {
	return a.inc.Snapshot(w)
}

// Restore reconstructs an Analyzer from a Snapshot stream. The restored
// analyzer carries the snapshot's Options (including Workers, Precision
// and Shards) and is immediately ready for PartialFit. Streams from an
// unknown format version, truncated or corrupted input fail with a
// descriptive error.
func Restore(r io.Reader) (*Analyzer, error) {
	inc, err := core.DecodeIncremental(r)
	if err != nil {
		return nil, fmt.Errorf("imrdmd: restore: %w", err)
	}
	co := inc.Options()
	opts := Options{
		DT:              co.DT,
		MaxLevels:       co.MaxLevels,
		MaxCycles:       co.MaxCycles,
		NyquistFactor:   co.NyquistFactor,
		Rank:            co.Rank,
		UseSVHT:         co.UseSVHT,
		MinWindow:       co.MinWindow,
		Parallel:        co.Parallel,
		Workers:         co.Workers,
		BlockColumns:    co.BlockColumns,
		Precision:       co.Precision,
		Shards:          co.Shards,
		DriftWindow:     co.DriftWindow,
		AmplitudeWindow: co.AmplitudeWindow,
		ColdHorizon:     co.ColdHorizon,
		DriftThreshold:  inc.DriftThreshold,
		AsyncRecompute:  inc.AsyncRecompute,
	}
	return &Analyzer{opts: opts, inc: inc}, nil
}

// InitialFit runs the batch mrDMD over the first window and prepares the
// incremental state.
func (a *Analyzer) InitialFit(s *Series) error {
	return a.inc.InitialFit(s.dense())
}

// PartialFit absorbs newly streamed time steps (Algorithm 1).
func (a *Analyzer) PartialFit(s *Series) (UpdateStats, error) {
	st, err := a.inc.PartialFit(s.dense())
	return UpdateStats{Drift: st.Drift, Recomputed: st.Recomputed, NewColumns: st.NewColumns}, err
}

// Wait blocks until asynchronous recomputations (if enabled) finish.
func (a *Analyzer) Wait() { a.inc.Wait() }

// Steps returns the number of absorbed time steps.
func (a *Analyzer) Steps() int { return a.inc.Cols() }

// Updates returns the number of PartialFits applied.
func (a *Analyzer) Updates() int { return a.inc.Updates() }

// DriftLog returns the drift recorded at recent PartialFits, oldest
// first. The log is bounded: after very long streams only the most recent
// entries (1024) are retained.
func (a *Analyzer) DriftLog() []float64 { return a.inc.DriftLog() }

// MemStats is the analyzer's resident history footprint by storage tier
// (see Options.ColdHorizon).
type MemStats struct {
	// HotBytes / ColdBytes are the resident bytes of the exact float64
	// tail and the float32 cold chunks.
	HotBytes, ColdBytes int64
	// Steps counts all absorbed time steps; ColdSteps how many of them
	// live in the cold tier.
	Steps, ColdSteps int
}

// MemStats reports the history-tier memory accounting — flat in stream
// length for the hot part, halved for everything past ColdHorizon.
func (a *Analyzer) MemStats() MemStats {
	ms := a.inc.MemStats()
	return MemStats{HotBytes: ms.HotBytes, ColdBytes: ms.ColdBytes, Steps: ms.Cols, ColdSteps: ms.ColdCols}
}

// Reconstruction returns the mrDMD approximation of everything absorbed —
// the denoised signal of Fig. 3.
func (a *Analyzer) Reconstruction() *Series {
	return &Series{m: a.inc.Reconstruct()}
}

// ReconstructionError returns ‖data − reconstruction‖_F, the quantity the
// paper reports per case study.
func (a *Analyzer) ReconstructionError() float64 { return a.inc.ReconError() }

// Spectrum returns every retained mode's spectrum point (Figs. 5/7).
func (a *Analyzer) Spectrum() []SpectrumPoint {
	pts := a.inc.Tree().Spectrum()
	out := make([]SpectrumPoint, len(pts))
	for i, p := range pts {
		out[i] = SpectrumPoint{Freq: p.Freq, Power: p.Power, Amp: p.Amp, Grow: p.Grow, Level: p.Level}
	}
	return out
}

// NumModes returns the total retained mode count.
func (a *Analyzer) NumModes() int { return a.inc.Tree().NumModes() }

// Levels returns the deepest level currently in the tree.
func (a *Analyzer) Levels() int { return a.inc.Tree().MaxLevel() }

// ModeMagnitudes returns, per sensor, the amplitude-weighted spectral
// mode magnitude over modes with frequency in [lo, hi] — a spectral view
// of where each sensor's energy lives.
func (a *Analyzer) ModeMagnitudes(lo, hi float64) []float64 {
	return a.inc.Tree().ModeMagnitudes(core.FreqBand{Lo: lo, Hi: hi})
}

// ReadingLevels returns, per sensor, the time-mean of the band-limited
// reconstruction — the denoised "readings of interest" the case studies
// standardize (hot nodes read high, stalled nodes read low).
func (a *Analyzer) ReadingLevels(lo, hi float64) []float64 {
	if math.IsInf(hi, 1) {
		hi = math.MaxFloat64
	}
	return a.inc.Tree().ReadingLevels(core.FreqBand{Lo: lo, Hi: hi})
}

// ZScores standardizes band-limited reading levels against the baseline
// sensor population, as in the paper's case studies: z > 2 marks
// dangerously hot components, z < −1.5 idle or stalled nodes.
func (a *Analyzer) ZScores(baselineIdx []int, lo, hi float64) ([]float64, error) {
	return baseline.ZScores(a.ReadingLevels(lo, hi), baselineIdx)
}

// AddSensors extends the analyzer with new sensors carrying their full
// history (one row per new sensor, one column per absorbed step) — the
// paper's future-work extension, implemented (see DESIGN.md E13+).
func (a *Analyzer) AddSensors(s *Series) error {
	return a.inc.AddSensors(s.dense())
}

// Sensors returns the current sensor count.
func (a *Analyzer) Sensors() int { return a.inc.Sensors() }

// CompressionRatio returns raw-data bytes over retained-mode bytes — the
// paper's terabytes-to-megabytes compression measure.
func (a *Analyzer) CompressionRatio() float64 {
	return a.inc.Tree().CompressionRatio()
}

// StabilizedReconstruction reconstructs with growing modes projected to
// neutral growth, taming the mrDMD divergence the paper flags at fine
// temporal resolutions (§VI).
func (a *Analyzer) StabilizedReconstruction() *Series {
	tree := a.inc.Tree()
	tree.StabilizeGrowth()
	return &Series{m: tree.Reconstruct()}
}

// BaselineByMeanRange selects sensors whose time-mean lies in [lo, hi],
// the paper's baseline selection rule.
func BaselineByMeanRange(s *Series, lo, hi float64) []int {
	return baseline.SelectByMeanRange(s.dense(), lo, hi)
}

// ClassifyZ buckets a z-score into the paper's interpretation bands:
// "cold" (z < −1.5), "near-baseline", "warm", or "hot" (z > 2).
func ClassifyZ(z float64) string {
	return baseline.Classify(z).String()
}

// RackView renders an SVG rack-layout view of per-node z-scores using the
// paper's layout DSL (e.g. "xc40 1 2 row0-1:0-10 2 c:0-7 1 s:0-7 1 b:0
// n:0"). outlined nodes get the dark hardware-error outline; highlighted
// nodes the red outline.
func RackView(w io.Writer, layoutSpec, title string, z []float64, outlined, highlighted []int) error {
	layout, err := rack.Parse(layoutSpec)
	if err != nil {
		return err
	}
	toSet := func(idx []int) map[int]bool {
		if len(idx) == 0 {
			return nil
		}
		m := make(map[int]bool, len(idx))
		for _, i := range idx {
			m[i] = true
		}
		return m
	}
	return viz.RenderRackView(w, layout, z, viz.RackViewConfig{
		Title:       title,
		ZMax:        5,
		Outlined:    toSet(outlined),
		Highlighted: toSet(highlighted),
	})
}
