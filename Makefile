# Build/verify entry points. `make lint` runs the same stack as the CI
# lint job; staticcheck and govulncheck run only when installed (CI
# installs pinned versions; the dev container may not have them).

GO ?= go
VETTOOL := bin/imrdmd-vet

.PHONY: all build test lint vettool vet-custom vet-asmdecl checkptr clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vettool rebuilds whenever the framework, an analyzer, or the driver
# changes — the same inputs the CI cache key hashes.
VETTOOL_SRCS := go.mod $(shell find internal/analysis cmd/imrdmd-vet -name '*.go' -not -path '*/testdata/*' 2>/dev/null)

$(VETTOOL): $(VETTOOL_SRCS)
	$(GO) build -o $(VETTOOL) ./cmd/imrdmd-vet

vettool: $(VETTOOL)

vet-custom: $(VETTOOL)
	$(GO) vet -vettool=$(CURDIR)/$(VETTOOL) ./...

vet-asmdecl:
	$(GO) vet -asmdecl ./...

checkptr:
	$(GO) test -count=1 -gcflags=all=-d=checkptr ./internal/mat/... ./internal/compute/... ./internal/svd/...

lint: vet-custom vet-asmdecl
	$(GO) vet ./...
	$(GO) test ./internal/analysis/...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs the pinned version)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping (CI runs the pinned version)"; fi

clean:
	rm -rf bin
