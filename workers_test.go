package imrdmd

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// workersTestSeries builds a multiscale synthetic signal large enough
// that the matrix kernels cross their parallel threshold.
func workersTestSeries(p, t int, seed int64) *Series {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, p*t)
	for i := 0; i < p; i++ {
		phase := rng.Float64() * 2 * math.Pi
		amp := 1 + rng.Float64()
		for k := 0; k < t; k++ {
			tt := float64(k)
			data[i*t+k] = 40 +
				5*math.Sin(tt/200+phase) +
				amp*math.Sin(tt/17+phase) +
				0.3*rng.NormFloat64()
		}
	}
	return FromDense(p, t, data)
}

// TestWorkersBoundsGoroutineCount verifies the acceptance property of the
// shared compute engine: with Options.Workers set, a full streamed
// analysis — initial fit, partial fits, drift-triggered asynchronous
// recomputes — never grows the process goroutine count beyond the
// engine's lanes (pool workers + the async lane), instead of spawning a
// fresh goroutine fleet per matrix multiply and per sibling window.
func TestWorkersBoundsGoroutineCount(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skip("needs GOMAXPROCS >= 4 to distinguish bounded from unbounded spawning")
	}
	const workers = 2

	series := workersTestSeries(256, 640, 9)

	baseline := runtime.NumGoroutine()
	var peak int64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() { // sampler: counts itself via baseline+1 below
		defer close(sampled)
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := int64(runtime.NumGoroutine())
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	a := mustNew(t, Options{
		DT: 1, MaxLevels: 5, MaxCycles: 2, UseSVHT: true,
		Parallel: true, Workers: workers,
		DriftThreshold: 1e-9, AsyncRecompute: true,
	})
	if err := a.InitialFit(series.Slice(0, 400)); err != nil {
		t.Fatal(err)
	}
	for pos := 400; pos < 640; pos += 80 {
		if _, err := a.PartialFit(series.Slice(pos, pos+80)); err != nil {
			t.Fatal(err)
		}
	}
	a.Wait()
	close(stop)
	<-sampled

	// Allowed: the sampler itself, workers−1 pool goroutines, the async
	// recompute lane, plus slack for runtime-internal goroutines (GC
	// workers, timers) that can appear at any moment.
	allowed := int64(baseline + 1 + (workers - 1) + 1 + 3)
	if peak > allowed {
		t.Fatalf("goroutine peak %d exceeds allowed %d (baseline %d, workers %d): engine is not bounding concurrency",
			peak, allowed, baseline, workers)
	}
}

// TestWorkersEquivalence checks that the lane count changes scheduling
// only: a single-lane and a multi-lane analyzer over the same stream
// agree on the reconstruction.
func TestWorkersEquivalence(t *testing.T) {
	series := workersTestSeries(48, 320, 5)
	run := func(workers int) (float64, int) {
		a := mustNew(t, Options{
			DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true,
			Parallel: true, Workers: workers,
		})
		if err := a.InitialFit(series.Slice(0, 200)); err != nil {
			t.Fatal(err)
		}
		if _, err := a.PartialFit(series.Slice(200, 320)); err != nil {
			t.Fatal(err)
		}
		return a.ReconstructionError(), a.NumModes()
	}
	err1, modes1 := run(1)
	err4, modes4 := run(4)
	if modes1 != modes4 {
		t.Fatalf("mode count differs: %d (1 worker) vs %d (4 workers)", modes1, modes4)
	}
	if math.Abs(err1-err4) > 1e-9*(1+err1) {
		t.Fatalf("reconstruction error differs: %v vs %v", err1, err4)
	}
}
