package imrdmd

import (
	"strings"
	"testing"
)

// mustNew fails the test on invalid options; the shared constructor for
// every analyzer test in this package.
func mustNew(t testing.TB, opts Options) *Analyzer {
	t.Helper()
	a, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestOptionsValidation is the satellite table test: New must reject
// invalid knobs with a descriptive error naming the offending field, and
// accept every valid combination including the zero value.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr string // substring of the error; empty = must succeed
	}{
		{"zero value", Options{}, ""},
		{"typical streaming config", Options{DT: 20, MaxLevels: 6, UseSVHT: true, Workers: 4, BlockColumns: 8}, ""},
		{"explicit float64", Options{Precision: PrecisionFloat64}, ""},
		{"mixed tier", Options{Precision: PrecisionMixed}, ""},
		{"mixed with knobs", Options{Precision: "mixed", Workers: 2, BlockColumns: 1}, ""},
		{"explicit single shard", Options{Shards: 1}, ""},
		{"two shards", Options{Shards: 2}, ""},
		{"sharded streaming config", Options{DT: 20, Shards: 4, Workers: 4, BlockColumns: 8, UseSVHT: true}, ""},
		{"sharded mixed tier", Options{Shards: 2, Precision: PrecisionMixed}, ""},
		{"negative workers", Options{Workers: -1}, "Workers"},
		{"very negative workers", Options{Workers: -100}, "Workers"},
		{"negative block columns", Options{BlockColumns: -8}, "BlockColumns"},
		{"negative shards", Options{Shards: -1}, "Shards"},
		{"very negative shards", Options{Shards: -64}, "Shards"},
		{"unknown precision", Options{Precision: "float16"}, "Precision"},
		{"misspelled precision", Options{Precision: "Mixed"}, "Precision"},
		{"both invalid reports first", Options{Workers: -1, Precision: "nope"}, "Workers"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, err := New(c.opts)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid options rejected: %v", err)
				}
				if a == nil {
					t.Fatal("nil analyzer for valid options")
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid options accepted: %+v", c.opts)
			}
			if a != nil {
				t.Fatal("non-nil analyzer returned alongside error")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not name the offending field %q", err, c.wantErr)
			}
		})
	}
}

// TestShardsPublicPipeline smoke-tests the Shards knob through the public
// API: a sharded analyzer streams the same data as an unsharded one and
// reproduces its mode count and reconstruction error to the documented
// 1e-8; oversharding is rejected at InitialFit with an error naming the
// knob.
func TestShardsPublicPipeline(t *testing.T) {
	s := syntheticTemps(13, 24, 512, []int{2})
	run := func(shards int) (int, float64) {
		a := mustNew(t, Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true, Shards: shards})
		if err := a.InitialFit(s.Slice(0, 384)); err != nil {
			t.Fatal(err)
		}
		if _, err := a.PartialFit(s.Slice(384, 512)); err != nil {
			t.Fatal(err)
		}
		return a.NumModes(), a.ReconstructionError()
	}
	modes1, err1 := run(0)
	modes3, err3 := run(3)
	if modes3 != modes1 {
		t.Fatalf("Shards=3 kept %d modes, unsharded kept %d", modes3, modes1)
	}
	if d := err3 - err1; d > 1e-8*(1+err1) || d < -1e-8*(1+err1) {
		t.Fatalf("Shards=3 reconstruction error %.12g vs unsharded %.12g", err3, err1)
	}

	a := mustNew(t, Options{DT: 1, Shards: 1000})
	err := a.InitialFit(s.Slice(0, 384))
	if err == nil {
		t.Fatal("1000 shards over 24 sensors accepted at InitialFit")
	}
	if !strings.Contains(err.Error(), "Shards") {
		t.Fatalf("error %q does not name the Shards knob", err)
	}
}

// TestMixedPrecisionPublicPipeline smoke-tests the Precision knob through
// the public API: a mixed-tier analyzer streams the same data as a
// float64 one and lands on the same mode count and an equivalent
// reconstruction error.
func TestMixedPrecisionPublicPipeline(t *testing.T) {
	s := syntheticTemps(11, 16, 512, []int{2})
	run := func(precision string) (int, float64) {
		a := mustNew(t, Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true, Precision: precision})
		if err := a.InitialFit(s.Slice(0, 384)); err != nil {
			t.Fatal(err)
		}
		if _, err := a.PartialFit(s.Slice(384, 512)); err != nil {
			t.Fatal(err)
		}
		return a.NumModes(), a.ReconstructionError()
	}
	modes64, err64 := run(PrecisionFloat64)
	modesMixed, errMixed := run(PrecisionMixed)
	if modesMixed != modes64 {
		t.Fatalf("mixed kept %d modes, float64 kept %d", modesMixed, modes64)
	}
	if errMixed > err64*1.01 {
		t.Fatalf("mixed reconstruction error %.6g vs float64 %.6g", errMixed, err64)
	}
}
