package imrdmd

import (
	"fmt"
	"io"

	"imrdmd/internal/mat"
	"imrdmd/internal/stream"
)

// Series is a P×T sensor matrix: row i is sensor i's time series, columns
// are snapshots a fixed Δt apart. It is the public input/output type of
// the analyzer.
type Series struct {
	m *mat.Dense
}

// NewSeries allocates a zeroed P×T series.
func NewSeries(p, t int) *Series {
	return &Series{m: mat.NewDense(p, t)}
}

// FromRows builds a Series from per-sensor rows (all rows must have equal
// length).
func FromRows(rows [][]float64) (*Series, error) {
	if len(rows) == 0 {
		return NewSeries(0, 0), nil
	}
	t := len(rows[0])
	s := NewSeries(len(rows), t)
	for i, r := range rows {
		if len(r) != t {
			return nil, fmt.Errorf("imrdmd: row %d has %d values, want %d", i, len(r), t)
		}
		copy(s.m.Row(i), r)
	}
	return s, nil
}

// FromDense wraps raw row-major data (p rows × t cols) without copying.
func FromDense(p, t int, data []float64) *Series {
	return &Series{m: mat.NewDenseData(p, t, data)}
}

// Sensors returns P.
func (s *Series) Sensors() int { return s.m.R }

// Steps returns T.
func (s *Series) Steps() int { return s.m.C }

// At returns sensor i at step k.
func (s *Series) At(i, k int) float64 { return s.m.At(i, k) }

// Set assigns sensor i at step k.
func (s *Series) Set(i, k int, v float64) { s.m.Set(i, k, v) }

// Row returns sensor i's series, aliasing the underlying storage.
func (s *Series) Row(i int) []float64 { return s.m.Row(i) }

// Slice returns a copy of steps [k0, k1).
func (s *Series) Slice(k0, k1 int) *Series {
	return &Series{m: s.m.ColSlice(k0, k1)}
}

// Clone deep-copies the series.
func (s *Series) Clone() *Series { return &Series{m: s.m.Clone()} }

// Append returns s with the columns of more appended.
func (s *Series) Append(more *Series) *Series {
	return &Series{m: mat.HStack(s.m, more.m)}
}

// FrobNorm returns the Frobenius norm of the matrix.
func (s *Series) FrobNorm() float64 { return s.m.FrobNorm() }

// Sub returns s − other element-wise.
func (s *Series) Sub(other *Series) *Series {
	return &Series{m: mat.Sub(s.m, other.m)}
}

// WriteCSV writes the series, one sensor per row.
func (s *Series) WriteCSV(w io.Writer) error { return stream.WriteCSV(w, s.m) }

// ReadSeriesCSV reads a series written by WriteCSV.
func ReadSeriesCSV(r io.Reader) (*Series, error) {
	m, err := stream.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return &Series{m: m}, nil
}

// dense exposes the underlying matrix to sibling files in this package.
func (s *Series) dense() *mat.Dense { return s.m }
