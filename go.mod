module imrdmd

go 1.24
