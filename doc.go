// Package imrdmd is an incremental multiresolution dynamic mode
// decomposition (I-mrDMD) toolkit for assessing multifidelity HPC
// monitoring data, reproducing Shilpika et al., "An Incremental
// Multi-Level, Multi-Scale Approach to Assessment of Multifidelity HPC
// Systems" (SC 2024).
//
// The package decomposes streaming sensor matrices (P sensors × T time
// steps) into spatiotemporal modes at multiple timescales, updates the
// decomposition incrementally as new time steps arrive, isolates modes by
// frequency through the mrDMD power spectrum, and scores each sensor's
// deviation from a chosen baseline as z-scores ready for rack-layout
// visualization.
//
// # Quick start
//
//	a, err := imrdmd.New(imrdmd.Options{DT: 20, MaxLevels: 6, MaxCycles: 2, UseSVHT: true})
//	if err != nil { ... }                                   // invalid options are rejected
//	if err := a.InitialFit(series); err != nil { ... }      // first window
//	stats, err := a.PartialFit(more)                        // streamed updates
//	recon := a.Reconstruction()                             // denoised data
//	spec  := a.Spectrum()                                   // (freq, power, amp) points
//	base  := imrdmd.BaselineByMeanRange(series, 46, 57)     // baseline sensors
//	z, _  := a.ZScores(base, 0, math.Inf(1))                // per-sensor z-scores
//
// Options.Precision selects the arithmetic tier: the default "float64"
// keeps every stage in double precision; "mixed" screens each analysis
// window with the float32 kernel tier and recomputes only the modes the
// SVHT decision keeps in float64 — roughly twice the kernel throughput
// for the same kept-mode set (see DESIGN.md §6).
//
// Options.Shards row-partitions the streaming level-1 decomposition:
// each shard owns a slice of the sensor rows while the small factors
// replicate, and every PartialFit update costs exactly one projection
// all-reduce between shards — the in-process form of the multi-node
// scale-out, reproducing the unsharded results to 1e-8 (to screening
// accuracy, 2e-5, when combined with "mixed" precision, whose
// collectives ship float32 at half the bytes; see DESIGN.md §7).
//
// # Snapshot and restore
//
// Analyzer.Snapshot serializes the complete incremental state as a
// versioned binary stream and Restore reconstructs it; the restored
// analyzer continues PartialFit streams bit-compatibly with the
// uninterrupted one, across both precision tiers and sharded or
// unsharded level-1 state. This is what lets a long-running deployment
// survive restarts or migrate a stream between hosts:
//
//	var buf bytes.Buffer
//	if err := a.Snapshot(&buf); err != nil { ... }
//	b, err := imrdmd.Restore(&buf)          // picks up exactly where a left off
//
// # Serving streams
//
// cmd/imrdmd-serve wraps the analyzer in a long-running HTTP service:
// per-tenant analyzers (each with its own Options — per-tenant
// Precision/Shards selection included) behind chunked CSV/JSON ingest,
// query endpoints for modes/spectrum/reconstruction error, and
// snapshot/restore endpoints backed by the same codec, with all
// tenants' kernels bounded by one shared worker pool. See DESIGN.md §8.
//
// See the examples directory for complete monitoring scenarios and
// cmd/paperbench for the harness that regenerates every table and figure
// of the paper.
package imrdmd
