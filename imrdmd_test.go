package imrdmd

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// syntheticTemps builds a P×T temperature-like series: baseline sensors
// around 50 °C, `hot` sensors elevated, with slow and fast oscillations.
func syntheticTemps(seed int64, p, t int, hot []int) *Series {
	rng := rand.New(rand.NewSource(seed))
	s := NewSeries(p, t)
	hotSet := map[int]bool{}
	for _, h := range hot {
		hotSet[h] = true
	}
	for i := 0; i < p; i++ {
		base := 50 + rng.NormFloat64()
		if hotSet[i] {
			base += 15
		}
		ph := rng.Float64() * 2 * math.Pi
		for k := 0; k < t; k++ {
			tt := float64(k)
			v := base +
				2*math.Sin(2*math.Pi*tt/float64(t)+ph) +
				0.8*math.Sin(2*math.Pi*tt/64) +
				0.3*rng.NormFloat64()
			s.Set(i, k, v)
		}
	}
	return s
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries(2, 3)
	s.Set(1, 2, 7)
	if s.At(1, 2) != 7 || s.Sensors() != 2 || s.Steps() != 3 {
		t.Fatal("basic accessors broken")
	}
	rows, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if rows.At(1, 0) != 3 {
		t.Fatal("FromRows wrong")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	sl := rows.Slice(1, 2)
	if sl.Steps() != 1 || sl.At(0, 0) != 2 {
		t.Fatal("Slice wrong")
	}
	app := rows.Append(rows)
	if app.Steps() != 4 {
		t.Fatal("Append wrong")
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	s := syntheticTemps(1, 5, 20, nil)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Sub(s).FrobNorm(); d != 0 {
		t.Fatalf("round trip deviates by %g", d)
	}
}

func TestAnalyzerEndToEnd(t *testing.T) {
	hot := []int{3, 17}
	s := syntheticTemps(2, 24, 768, hot)
	a := mustNew(t, Options{DT: 1, MaxLevels: 5, MaxCycles: 2, UseSVHT: true})
	if err := a.InitialFit(s.Slice(0, 512)); err != nil {
		t.Fatal(err)
	}
	stats, err := a.PartialFit(s.Slice(512, 768))
	if err != nil {
		t.Fatal(err)
	}
	if stats.NewColumns != 256 {
		t.Fatalf("NewColumns = %d", stats.NewColumns)
	}
	if a.Steps() != 768 || a.Updates() != 1 {
		t.Fatalf("Steps=%d Updates=%d", a.Steps(), a.Updates())
	}

	// Reconstruction quality.
	recon := a.Reconstruction()
	if recon.Sensors() != 24 || recon.Steps() != 768 {
		t.Fatal("reconstruction shape wrong")
	}
	rel := a.ReconstructionError() / s.FrobNorm()
	if rel > 0.05 {
		t.Fatalf("relative reconstruction error %g", rel)
	}

	// Spectrum sanity.
	spec := a.Spectrum()
	if len(spec) == 0 || a.NumModes() != len(spec) {
		t.Fatal("spectrum empty or inconsistent")
	}
	for _, p := range spec {
		if p.Freq < 0 || p.Power < 0 {
			t.Fatal("negative spectrum quantities")
		}
	}
	if a.Levels() < 3 {
		t.Fatalf("Levels = %d", a.Levels())
	}

	// Z-scores flag the hot sensors.
	base := BaselineByMeanRange(s, 46, 57)
	if len(base) < 15 {
		t.Fatalf("baseline too small: %d", len(base))
	}
	z, err := a.ZScores(base, 0, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hot {
		if z[h] < 1 {
			t.Fatalf("hot sensor %d has z=%g, want clearly elevated", h, z[h])
		}
	}
	if ClassifyZ(0) != "near-baseline" || ClassifyZ(3) != "hot" {
		t.Fatal("ClassifyZ bands wrong")
	}
	if len(a.DriftLog()) != 1 {
		t.Fatal("drift log missing")
	}
}

func TestAnalyzerDriftRecompute(t *testing.T) {
	s := syntheticTemps(3, 8, 512, nil)
	a := mustNew(t, Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true,
		DriftThreshold: 1e-9, AsyncRecompute: true})
	if err := a.InitialFit(s.Slice(0, 256)); err != nil {
		t.Fatal(err)
	}
	stats, err := a.PartialFit(s.Slice(256, 512))
	if err != nil {
		t.Fatal(err)
	}
	a.Wait()
	if !stats.Recomputed {
		t.Fatal("tiny threshold should force recompute")
	}
}

func TestRackViewFromAnalyzer(t *testing.T) {
	s := syntheticTemps(4, 64, 256, []int{5})
	a := mustNew(t, Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true})
	if err := a.InitialFit(s); err != nil {
		t.Fatal(err)
	}
	base := BaselineByMeanRange(s, 46, 57)
	z, err := a.ZScores(base, 0, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// 64 nodes: 1 row × 4 racks × 4 cabinets × 4 slots.
	err = RackView(&buf, "mini 1 1 row0-0:0-3 2 c:0-3 1 s:0-3 b:0 n:0",
		"unit-test rack", z, []int{5}, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "unit-test rack") {
		t.Fatal("rack view SVG malformed")
	}
}

func TestRackViewBadSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := RackView(&buf, "not a spec :::", "t", nil, nil, nil); err == nil {
		t.Fatal("bad layout spec accepted")
	}
}
