package imrdmd

import (
	"math"
	"math/rand"
	"testing"
)

// TestOptionsBlockColumns checks the public BlockColumns knob end to end:
// streaming the same data with block-column SVD updates (8) and column-at-
// a-time updates (1) must agree on the reconstruction to truncation-level
// precision, and the default (0) must keep working unchanged.
func TestOptionsBlockColumns(t *testing.T) {
	const (
		p        = 24
		initialT = 256
		batches  = 2
		batchT   = 128 // 8 × the level-1 stride (256/16) per batch
	)
	rng := rand.New(rand.NewSource(42))
	total := initialT + batches*batchT
	s := NewSeries(p, total)
	for i := 0; i < p; i++ {
		phase := rng.Float64() * 2 * math.Pi
		for k := 0; k < total; k++ {
			tm := float64(k)
			s.Set(i, k, 3*math.Sin(tm/80+phase)+math.Sin(tm/7)+0.1*rng.NormFloat64())
		}
	}

	run := func(blockCols int) float64 {
		a := mustNew(t, Options{DT: 1, MaxLevels: 3, MaxCycles: 2, Rank: 4, BlockColumns: blockCols})
		if err := a.InitialFit(s.Slice(0, initialT)); err != nil {
			t.Fatal(err)
		}
		for b := 0; b < batches; b++ {
			lo := initialT + b*batchT
			if _, err := a.PartialFit(s.Slice(lo, lo+batchT)); err != nil {
				t.Fatal(err)
			}
		}
		if got := a.Steps(); got != total {
			t.Fatalf("BlockColumns=%d absorbed %d steps want %d", blockCols, got, total)
		}
		return a.ReconstructionError()
	}

	errBlock := run(8)
	errCol := run(1)
	errDefault := run(0)
	if d := math.Abs(errBlock - errCol); d > 1e-8 {
		t.Fatalf("BlockColumns=8 error %v vs column-at-a-time %v: |Δ| = %g > 1e-8", errBlock, errCol, d)
	}
	if d := math.Abs(errDefault - errCol); d > 1e-8 {
		t.Fatalf("default BlockColumns error %v vs column-at-a-time %v: |Δ| = %g > 1e-8", errDefault, errCol, d)
	}
	if errBlock > 0.9*s.FrobNorm() {
		t.Fatalf("reconstruction error %v not meaningfully below data norm %v", errBlock, s.FrobNorm())
	}
}
