package imrdmd

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"imrdmd/internal/baseline"
	"imrdmd/internal/core"
	"imrdmd/internal/hwlog"
	"imrdmd/internal/joblog"
	"imrdmd/internal/monitor"
	"imrdmd/internal/stream"
	"imrdmd/internal/telemetry"
	"imrdmd/internal/viz"
)

// TestFullPipelineIntegration exercises the whole stack end to end the
// way the paper's system runs: scheduler → telemetry → streaming I-mrDMD
// → baseline z-scores → rack view + report, with hardware-log alignment.
func TestFullPipelineIntegration(t *testing.T) {
	const nodes, steps = 128, 1024
	prof := telemetry.ThetaEnv()
	horizon := float64(steps) * prof.SampleInterval

	sched := joblog.Simulate(joblog.SimConfig{
		NumNodes: nodes, Horizon: horizon, Seed: 42,
		MeanInterarrival: horizon / 40, MeanDuration: horizon / 5,
	})
	if err := sched.Validate(); err != nil {
		t.Fatalf("scheduler invariant: %v", err)
	}

	gen := telemetry.NewGenerator(prof, nodes, 42)
	gen.Schedule = sched
	hotNode := 23
	stalledNode := 77
	gen.Anomalies = []telemetry.Anomaly{
		{Kind: telemetry.HotNode, Node: hotNode, Start: 0, End: horizon, Magnitude: 15},
		{Kind: telemetry.StalledNode, Node: stalledNode, Start: 0, End: horizon},
	}
	hl := hwlog.Generate(hwlog.GenConfig{
		NumNodes: nodes, Horizon: horizon, Seed: 42, BackgroundRate: 0.02,
		Bursts: []hwlog.Burst{{Node: hotNode, Cat: hwlog.MachineCheck, Start: 0, End: horizon, Count: 12}},
	})

	// Stream through the pump in 128-column batches.
	inc := core.NewIncremental(core.Options{
		DT: prof.SampleInterval, MaxLevels: 5, MaxCycles: 2, UseSVHT: true, Parallel: true,
	})
	src := stream.FromFunc(gen.Matrix, nodes, steps, 128)
	stats, err := stream.Pump(inc, src, 512)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Columns != steps || stats.Batches != 4 {
		t.Fatalf("pump stats %+v", stats)
	}

	// Reconstruction is faithful.
	data := gen.Matrix(0, steps)
	rel := inc.ReconError() / data.FrobNorm()
	if rel > 0.12 {
		t.Fatalf("relative reconstruction error %.3f", rel)
	}

	// Z-scores flag the injected anomalies and spare the normal fleet.
	levels := inc.Tree().ReadingLevels(core.FullBand())
	baseIdx := baseline.SelectByMeanRange(data, 46, 68)
	z, err := baseline.ZScores(levels, baseIdx)
	if err != nil {
		t.Fatal(err)
	}
	if z[hotNode] < 2 {
		t.Fatalf("hot node z=%.2f, want > 2", z[hotNode])
	}
	if z[stalledNode] > -1 {
		t.Fatalf("stalled node z=%.2f, want clearly negative", z[stalledNode])
	}

	// Hardware-log alignment: the machine-check node is the hot one.
	mc := hl.NodesWith(hwlog.MachineCheck, 6, 0, horizon)
	if len(mc) != 1 || mc[0] != hotNode {
		t.Fatalf("machine-check nodes %v, want [%d]", mc, hotNode)
	}

	// Rack view renders the fleet.
	var buf bytes.Buffer
	err = RackView(&buf, "xc40 1 2 row0-0:0-1 2 c:0-3 1 s:0-15 b:0 n:0",
		"integration", z, mc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("rack view not rendered")
	}

	// Report stitches everything into one document.
	rep := &viz.Report{Title: "integration"}
	rep.AddFigure("rack", "z-scores", buf.String())
	var html bytes.Buffer
	if err := rep.Render(&html); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html.String(), "integration") {
		t.Fatal("report missing content")
	}
}

// TestMonitorOverTelemetryStream runs the alerting loop over a telemetry
// stream with a mid-stream fault injection.
func TestMonitorOverTelemetryStream(t *testing.T) {
	const nodes, steps = 64, 768
	prof := telemetry.ThetaEnv()
	horizon := float64(steps) * prof.SampleInterval
	onset := horizon / 2

	gen := telemetry.NewGenerator(prof, nodes, 7)
	faulty := 31
	gen.Anomalies = []telemetry.Anomaly{
		{Kind: telemetry.HotNode, Node: faulty, Start: onset, End: horizon, Magnitude: 16},
	}

	m := monitor.New(monitor.Config{
		Opts:       core.Options{DT: prof.SampleInterval, MaxLevels: 4, MaxCycles: 2, UseSVHT: true},
		BaselineLo: 40, BaselineHi: 60,
		EvalWindow: 192,
	})
	if err := m.Start(gen.Matrix(0, 384)); err != nil {
		t.Fatal(err)
	}
	sawFault := false
	for pos := 384; pos < steps; pos += 96 {
		alerts, err := m.Observe(gen.Matrix(pos, pos+96))
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alerts {
			if a.Sensor == faulty && a.Kind == monitor.Hot {
				sawFault = true
			}
		}
	}
	if !sawFault {
		t.Fatal("mid-stream fault never alerted")
	}
}

// TestAnalyzerExtensions exercises the public future-work APIs together:
// sensor addition, compression accounting, stabilized reconstruction.
func TestAnalyzerExtensions(t *testing.T) {
	s := syntheticTemps(9, 20, 512, nil)
	a := mustNew(t, Options{DT: 1, MaxLevels: 4, MaxCycles: 2, UseSVHT: true})
	if err := a.InitialFit(s.Slice(0, 512)); err != nil {
		t.Fatal(err)
	}
	// Add four more sensors with full history.
	extra := syntheticTemps(10, 4, 512, nil)
	if err := a.AddSensors(extra); err != nil {
		t.Fatal(err)
	}
	if a.Sensors() != 24 {
		t.Fatalf("Sensors = %d want 24", a.Sensors())
	}
	if cr := a.CompressionRatio(); cr <= 0 {
		t.Fatalf("compression ratio %.2f", cr)
	}
	st := a.StabilizedReconstruction()
	if st.Sensors() != 24 || st.Steps() != 512 {
		t.Fatal("stabilized reconstruction shape wrong")
	}
	for i := 0; i < st.Sensors(); i++ {
		for _, v := range st.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("stabilized reconstruction not finite")
			}
		}
	}
}
